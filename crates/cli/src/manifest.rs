//! The campaign manifest: a declarative TOML or JSON description of a
//! pipeline, the systems to run it on, and the parameter sweeps.
//!
//! See `examples/manifests/` for complete examples and the README for the
//! schema reference. The shape, in TOML terms:
//!
//! ```toml
//! [campaign]
//! name = "spark-pipeline"       # required
//! systems = ["mondrian", "cpu"] # or ["all"]; default all
//! topology = "tiny"             # "tiny" | "scaled"; default tiny
//! tuples_per_vault = 256        # default 256
//! seed = 7                      # default the paper seed
//! key_dist = "uniform"          # "uniform" | "zipf"; default uniform
//! zipf_theta = 0.9              # only with key_dist = "zipf"
//! key_bound = 4096              # optional source key upper bound
//! concurrency = "serial"        # "serial" | "branch" | "stream" | "auto"; default serial
//! jobs = 4                      # worker threads; default all host cores
//!                               # (overridden by MONDRIAN_JOBS / --jobs)
//! sim_threads = 2               # engine event-loop threads per run;
//!                               # default follows the per-run thread
//!                               # budget (overridden by --sim-threads)
//!
//! [sweep]                       # optional; lists override the scalars
//! tuples_per_vault = [256, 512]
//! seeds = [1, 2, 3]
//! zipf_theta = [0.6, 0.9]       # key-distribution skew axis
//! topology = ["tiny", "scaled"] # HMC/vault topology axis
//! underprovision = [0.5, 1.0]   # §5.4 permutable-region sizing axis
//!
//! [limits]                      # optional cooperative resource limits
//! wall_time_ms = 60000          # campaign wall-clock budget (host time)
//! max_events = 1000000          # per-run non-tick event budget (sim state)
//! max_sweep_points = 64         # cap on the resolved cross product
//! max_memory_bytes = 16777216   # cap on the estimated peak relation bytes
//!
//! [assertions]                  # optional result assertions
//! max_makespan_ps = 900000000   # per-run simulated-makespan ceiling
//! matches_serial = true         # require every scheduled stage to verify
//! stage_digests = ["0011223344556677"]  # expected per-stage output
//!                               # digests (16 hex chars, one per stage)
//!
//! [faults]                      # optional deterministic fault plan
//! run = 0                       # sweep position the plan targets
//! panic_at_event = 100          # panic at the Nth non-tick event
//! stall_at_event = 100          # stall instead (stall_ms per fire)
//! stall_ms = 50
//! corrupt_digest_stage = 1      # XOR-corrupt this stage's digest
//! panic_in_vault_poll = true    # panic inside a vault poll
//! times = 1                     # fires before disarming; default unlimited
//!
//! [[stage]]                     # one per pipeline stage, in order
//! op = "filter"                 # stage name (see StageSpec)
//! modulus = 10
//! remainder = 0
//! # name = "drop-odds"          # optional unique label (JUnit, traces)
//! # input = "prev"              # "prev" (default) | "source" | stage index,
//! #                             # or a list of edges for multi-input stages
//! #                             # (union 2+, cogroup exactly 2): input = [0, 1]
//! ```
//!
//! A JSON manifest is the same tree spelled as an object:
//! `{"campaign": {...}, "sweep": {...}, "stage": [{...}, ...]}`.
//!
//! Parsing is strict: unknown keys in any section (and duplicate stage
//! names) are rejected, and every parse error maps to the CLI's
//! `invalid_manifest` exit code. The `MONDRIAN_FAULT` environment
//! variable overrides `[faults]` with the same keys spelled as a
//! `;`-separated list (`run=0;panic_at_event=100;times=1`).

use mondrian_core::fault::FaultPlan;
use mondrian_core::{KeyDist, SystemKind};
use mondrian_pipeline::{
    BuildSide, Concurrency, Pipeline, PipelineConfig, Stage, StageInput, StageSpec,
};

use crate::value::{parse_json, parse_toml, Value};

/// Manifest text formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// TOML subset (`.toml`).
    Toml,
    /// JSON (`.json`).
    Json,
}

impl Format {
    /// Picks the format from a file name.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown extensions.
    pub fn from_path(path: &str) -> Result<Format, String> {
        if path.ends_with(".toml") {
            Ok(Format::Toml)
        } else if path.ends_with(".json") {
            Ok(Format::Json)
        } else {
            Err(format!("{path}: unknown manifest extension (expected .toml or .json)"))
        }
    }
}

/// One fully resolved run of the campaign's cross product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// The evaluated system.
    pub system: SystemKind,
    /// Whether the run uses the minimal test topology.
    pub tiny: bool,
    /// Source tuples per vault.
    pub tuples_per_vault: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Key-distribution skew override (None = the campaign's base
    /// distribution).
    pub theta: Option<f64>,
    /// §5.4 permutable-region underprovisioning factor (None = exact
    /// sizing).
    pub underprovision: Option<f64>,
}

impl RunSpec {
    /// A short label naming the swept axes of this run.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{:<16} {:<6} tpv={:<6} seed={:<10}",
            self.system.name(),
            if self.tiny { "tiny" } else { "scaled" },
            self.tuples_per_vault,
            self.seed,
        );
        if let Some(t) = self.theta {
            label.push_str(&format!(" theta={t:<4}"));
        }
        if let Some(u) = self.underprovision {
            label.push_str(&format!(" up={u:<4}"));
        }
        label
    }

    /// [`Self::label`] with the table-column padding collapsed to single
    /// spaces — the run's name in trace process lanes and progress lines,
    /// where alignment is noise.
    pub fn id(&self) -> String {
        self.label().split_whitespace().collect::<Vec<_>>().join(" ")
    }
}

/// Cooperative resource limits (`[limits]`). Every limit is enforced at
/// deterministic checkpoints, so a tripped limit truncates the campaign
/// at the same point for every `--jobs` / `--sim-threads` value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Limits {
    /// Campaign wall-clock budget in milliseconds (host time; checked at
    /// sweep, stage, and wave boundaries).
    pub wall_time_ms: Option<u64>,
    /// Per-run non-tick event budget (pure simulation state).
    pub max_events: Option<u64>,
    /// Cap on the resolved sweep cross product; runs past the cap are
    /// skipped before execution.
    pub max_sweep_points: Option<usize>,
    /// Cap on a run's estimated peak relation footprint, derived from
    /// the manifest's cardinalities before execution.
    pub max_memory_bytes: Option<u64>,
}

/// Campaign-level result assertions (`[assertions]`), evaluated at
/// artifact-assembly time against each completed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Assertions {
    /// Per-run simulated-makespan ceiling in picoseconds.
    pub max_makespan_ps: Option<u64>,
    /// Require every scheduled-concurrency stage to match the serial
    /// reference.
    pub matches_serial: bool,
    /// Expected per-stage output digests (one per stage, in order).
    pub stage_digests: Option<Vec<u64>>,
}

/// A parsed campaign manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Campaign name (echoed into the result artifact).
    pub name: String,
    /// Systems to run on.
    pub systems: Vec<SystemKind>,
    /// Whether the base topology is the minimal test topology.
    pub tiny: bool,
    /// Topology axis (tiny flags; singleton unless swept).
    pub topologies: Vec<bool>,
    /// Tuples-per-vault values (singleton unless swept).
    pub tuples_per_vault: Vec<usize>,
    /// Seeds (singleton unless swept).
    pub seeds: Vec<u64>,
    /// Source key distribution.
    pub dist: KeyDist,
    /// Key-distribution theta axis (singleton `None` unless swept).
    pub thetas: Vec<Option<f64>>,
    /// Underprovisioning-factor axis (singleton `None` unless swept).
    pub underprovision: Vec<Option<f64>>,
    /// Optional source key upper bound.
    pub key_bound: Option<u64>,
    /// How the executor schedules stages onto the machine.
    pub concurrency: Concurrency,
    /// Worker threads for the sweep (`None` = decide at run time: the
    /// `MONDRIAN_JOBS` environment variable, else every host core).
    /// Execution speed only — results are byte-identical for every value.
    pub jobs: Option<usize>,
    /// Host threads for each run's engine event loop (`None` = follow
    /// the executor's per-run thread budget). Execution speed only —
    /// results are byte-identical for every value.
    pub sim_threads: Option<usize>,
    /// The pipeline stages.
    pub stages: Vec<Stage>,
    /// Optional per-stage labels (unique when present).
    pub stage_names: Vec<Option<String>>,
    /// Cooperative resource limits.
    pub limits: Limits,
    /// Result assertions.
    pub assertions: Assertions,
    /// Deterministic fault plan (`[faults]` or `MONDRIAN_FAULT`).
    pub fault: Option<FaultPlan>,
}

impl Manifest {
    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema error.
    pub fn parse(text: &str, format: Format) -> Result<Manifest, String> {
        let doc = match format {
            Format::Toml => parse_toml(text)?,
            Format::Json => parse_json(text)?,
        };
        Manifest::from_value(&doc)
    }

    /// Builds a manifest from a parsed document tree.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema error.
    pub fn from_value(doc: &Value) -> Result<Manifest, String> {
        check_keys(
            doc,
            "the manifest",
            &["campaign", "sweep", "stage", "limits", "assertions", "faults"],
        )?;
        let campaign = doc.get("campaign").ok_or("missing [campaign] section")?;
        check_keys(
            campaign,
            "[campaign]",
            &[
                "name",
                "systems",
                "topology",
                "tuples_per_vault",
                "seed",
                "key_dist",
                "zipf_theta",
                "key_bound",
                "concurrency",
                "jobs",
                "sim_threads",
            ],
        )?;
        let name = campaign
            .get("name")
            .and_then(Value::as_str)
            .ok_or("campaign.name (string) is required")?
            .to_string();

        let systems = match campaign.get("systems") {
            None => SystemKind::ALL.to_vec(),
            Some(v) => {
                let names = v.as_array().ok_or("campaign.systems must be an array")?;
                let all =
                    names.iter().any(|n| n.as_str().is_some_and(|s| s.eq_ignore_ascii_case("all")));
                if all {
                    if names.len() != 1 {
                        return Err("\"all\" cannot be combined with other systems".into());
                    }
                    SystemKind::ALL.to_vec()
                } else {
                    let mut systems = Vec::new();
                    for n in names {
                        let n = n.as_str().ok_or("campaign.systems entries must be strings")?;
                        systems.push(parse_system(n)?);
                    }
                    if systems.is_empty() {
                        return Err("campaign.systems is empty".into());
                    }
                    systems
                }
            }
        };

        let tiny = match campaign.get("topology") {
            None => true,
            Some(v) => parse_topology(v)?,
        };

        let concurrency =
            match campaign.get("concurrency").map(|v| v.as_str()) {
                None | Some(Some("serial")) => Concurrency::Serial,
                Some(Some("branch")) => Concurrency::Branch,
                Some(Some("stream")) => Concurrency::Stream,
                Some(Some("auto")) => Concurrency::Auto,
                _ => return Err(
                    "campaign.concurrency must be \"serial\", \"branch\", \"stream\" or \"auto\""
                        .into(),
                ),
            };

        let tpv_scalar =
            get_usize(campaign, "campaign.tuples_per_vault", "tuples_per_vault")?.unwrap_or(256);
        let seed_scalar = get_u64(campaign, "campaign.seed", "seed")?.unwrap_or(0x6d6f6e64);

        let dist = match campaign.get("key_dist").map(|v| v.as_str()) {
            None | Some(Some("uniform")) => KeyDist::Uniform,
            Some(Some("zipf")) => {
                let theta = campaign
                    .get("zipf_theta")
                    .and_then(Value::as_float)
                    .ok_or("key_dist = \"zipf\" requires zipf_theta (float)")?;
                if !(theta.is_finite() && theta >= 0.0) {
                    return Err("zipf_theta must be a non-negative finite number".into());
                }
                KeyDist::Zipf(theta)
            }
            _ => return Err("campaign.key_dist must be \"uniform\" or \"zipf\"".into()),
        };
        let key_bound = get_u64(campaign, "campaign.key_bound", "key_bound")?;
        let jobs = get_usize(campaign, "campaign.jobs", "jobs")?;
        if jobs == Some(0) {
            return Err("campaign.jobs must be at least 1".into());
        }
        let sim_threads = get_usize(campaign, "campaign.sim_threads", "sim_threads")?;
        if sim_threads == Some(0) {
            return Err("campaign.sim_threads must be at least 1".into());
        }

        let mut tuples_per_vault = vec![tpv_scalar];
        let mut seeds = vec![seed_scalar];
        let mut thetas: Vec<Option<f64>> = vec![None];
        let mut topologies = vec![tiny];
        let mut underprovision: Vec<Option<f64>> = vec![None];
        if let Some(sweep) = doc.get("sweep") {
            check_keys(
                sweep,
                "[sweep]",
                &["tuples_per_vault", "seeds", "zipf_theta", "topology", "underprovision"],
            )?;
            if let Some(v) = sweep.get("tuples_per_vault") {
                tuples_per_vault = int_list(v, "sweep.tuples_per_vault")?
                    .into_iter()
                    .map(|i| i as usize)
                    .collect();
            }
            if let Some(v) = sweep.get("seeds") {
                seeds = int_list(v, "sweep.seeds")?.into_iter().map(|i| i as u64).collect();
            }
            if let Some(v) = sweep.get("zipf_theta") {
                thetas = float_list(v, "sweep.zipf_theta")?
                    .into_iter()
                    .map(|t| {
                        if t.is_finite() && t >= 0.0 {
                            Ok(Some(t))
                        } else {
                            Err("sweep.zipf_theta entries must be non-negative finite".to_string())
                        }
                    })
                    .collect::<Result<_, _>>()?;
            }
            if let Some(v) = sweep.get("topology") {
                let entries = v.as_array().ok_or("sweep.topology must be an array")?;
                if entries.is_empty() {
                    return Err("sweep.topology is empty".into());
                }
                topologies = entries.iter().map(parse_topology).collect::<Result<_, _>>()?;
            }
            if let Some(v) = sweep.get("underprovision") {
                underprovision = float_list(v, "sweep.underprovision")?
                    .into_iter()
                    .map(|f| {
                        if f.is_finite() && f > 0.0 {
                            Ok(Some(f))
                        } else {
                            Err("sweep.underprovision entries must be positive finite".to_string())
                        }
                    })
                    .collect::<Result<_, _>>()?;
            }
        }

        let limits = match doc.get("limits") {
            None => Limits::default(),
            Some(v) => parse_limits(v)?,
        };
        let assertions = match doc.get("assertions") {
            None => Assertions::default(),
            Some(v) => parse_assertions(v)?,
        };
        let fault = match doc.get("faults") {
            None => None,
            Some(v) => Some(parse_faults(v)?),
        };

        let stage_list = doc
            .get("stage")
            .and_then(Value::as_array)
            .ok_or("at least one [[stage]] is required")?;
        if stage_list.is_empty() {
            return Err("at least one [[stage]] is required".into());
        }
        let mut stages = Vec::with_capacity(stage_list.len());
        let mut stage_names: Vec<Option<String>> = Vec::with_capacity(stage_list.len());
        for (i, s) in stage_list.iter().enumerate() {
            let (stage, name) = parse_stage(s).map_err(|e| format!("stage {i}: {e}"))?;
            if let Some(name) = &name {
                if let Some(prev) =
                    stage_names.iter().position(|n| n.as_deref() == Some(name.as_str()))
                {
                    return Err(format!(
                        "stage {i}: duplicate stage name {name:?} (already used by stage {prev})"
                    ));
                }
            }
            stages.push(stage);
            stage_names.push(name);
        }
        if let Some(digests) = &assertions.stage_digests {
            if digests.len() != stages.len() {
                return Err(format!(
                    "assertions.stage_digests has {} entries but the pipeline has {} stages",
                    digests.len(),
                    stages.len()
                ));
            }
        }
        let manifest = Manifest {
            name,
            systems,
            tiny,
            topologies,
            tuples_per_vault,
            seeds,
            dist,
            thetas,
            underprovision,
            key_bound,
            concurrency,
            jobs,
            sim_threads,
            stages,
            stage_names,
            limits,
            assertions,
            fault,
        };
        manifest.pipeline().validate()?;
        Ok(manifest)
    }

    /// The declared pipeline.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::from_stages(self.stages.clone())
    }

    /// The campaign's cross product, in deterministic order: system-major,
    /// then topology, tuples-per-vault, seed, theta, underprovisioning.
    pub fn runs(&self) -> Vec<RunSpec> {
        let mut out = Vec::new();
        for &system in &self.systems {
            for &tiny in &self.topologies {
                for &tuples_per_vault in &self.tuples_per_vault {
                    for &seed in &self.seeds {
                        for &theta in &self.thetas {
                            for &underprovision in &self.underprovision {
                                out.push(RunSpec {
                                    system,
                                    tiny,
                                    tuples_per_vault,
                                    seed,
                                    theta,
                                    underprovision,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The pipeline configuration of one resolved run.
    pub fn config_for(&self, run: RunSpec) -> PipelineConfig {
        let mut cfg = if run.tiny {
            PipelineConfig::tiny(run.system)
        } else {
            PipelineConfig::new(run.system)
        };
        cfg.tuples_per_vault = run.tuples_per_vault;
        cfg.seed = run.seed;
        cfg.dist = match run.theta {
            Some(theta) => KeyDist::Zipf(theta),
            None => self.dist,
        };
        cfg.key_bound = self.key_bound;
        cfg.underprovision = run.underprovision;
        cfg.concurrency = self.concurrency;
        cfg.sim_threads = self.sim_threads.unwrap_or(0);
        cfg
    }
}

/// Rejects unknown keys in a section — schema typos surface at parse
/// time as `invalid_manifest` instead of silently changing behavior.
fn check_keys(table: &Value, ctx: &str, allowed: &[&str]) -> Result<(), String> {
    if let Value::Table(entries) = table {
        for key in entries.keys() {
            if !allowed.contains(&key.as_str()) {
                let mut expected: Vec<&str> = allowed.to_vec();
                expected.sort_unstable();
                return Err(format!("unknown key {key:?} in {ctx}; expected one of {expected:?}"));
            }
        }
    }
    Ok(())
}

fn get_bool(table: &Value, ctx: &str, key: &str) -> Result<Option<bool>, String> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => match v.as_bool() {
            Some(b) => Ok(Some(b)),
            None => Err(format!("{ctx} must be a boolean")),
        },
    }
}

fn parse_limits(v: &Value) -> Result<Limits, String> {
    check_keys(
        v,
        "[limits]",
        &["wall_time_ms", "max_events", "max_sweep_points", "max_memory_bytes"],
    )?;
    Ok(Limits {
        wall_time_ms: get_u64(v, "limits.wall_time_ms", "wall_time_ms")?,
        max_events: get_u64(v, "limits.max_events", "max_events")?,
        max_sweep_points: get_usize(v, "limits.max_sweep_points", "max_sweep_points")?,
        max_memory_bytes: get_u64(v, "limits.max_memory_bytes", "max_memory_bytes")?,
    })
}

fn parse_assertions(v: &Value) -> Result<Assertions, String> {
    check_keys(v, "[assertions]", &["max_makespan_ps", "matches_serial", "stage_digests"])?;
    let stage_digests = match v.get("stage_digests") {
        None => None,
        Some(list) => {
            let items =
                list.as_array().ok_or("assertions.stage_digests must be an array of strings")?;
            let mut digests = Vec::with_capacity(items.len());
            for item in items {
                let hex =
                    item.as_str().ok_or("assertions.stage_digests entries must be strings")?;
                if hex.len() != 16 {
                    return Err(format!(
                        "assertions.stage_digests entry {hex:?} must be 16 hex characters"
                    ));
                }
                let digest = u64::from_str_radix(hex, 16).map_err(|_| {
                    format!("assertions.stage_digests entry {hex:?} must be 16 hex characters")
                })?;
                digests.push(digest);
            }
            Some(digests)
        }
    };
    Ok(Assertions {
        max_makespan_ps: get_u64(v, "assertions.max_makespan_ps", "max_makespan_ps")?,
        matches_serial: get_bool(v, "assertions.matches_serial", "matches_serial")?
            .unwrap_or(false),
        stage_digests,
    })
}

fn parse_faults(v: &Value) -> Result<FaultPlan, String> {
    check_keys(
        v,
        "[faults]",
        &[
            "run",
            "panic_at_event",
            "stall_at_event",
            "stall_ms",
            "corrupt_digest_stage",
            "panic_in_vault_poll",
            "times",
        ],
    )?;
    Ok(FaultPlan {
        run: get_usize(v, "faults.run", "run")?.unwrap_or(0),
        panic_at_event: get_u64(v, "faults.panic_at_event", "panic_at_event")?,
        stall_at_event: get_u64(v, "faults.stall_at_event", "stall_at_event")?,
        stall_ms: get_u64(v, "faults.stall_ms", "stall_ms")?.unwrap_or(50),
        corrupt_digest_stage: get_usize(v, "faults.corrupt_digest_stage", "corrupt_digest_stage")?,
        panic_in_vault_poll: get_bool(v, "faults.panic_in_vault_poll", "panic_in_vault_poll")?
            .unwrap_or(false),
        times: get_u64(v, "faults.times", "times")?,
    })
}

/// Parses a `MONDRIAN_FAULT` specification: the `[faults]` keys as a
/// `;`-separated `key=value` list, e.g. `run=0;panic_at_event=100;times=1`.
///
/// # Errors
///
/// Returns a description of the first unknown key or malformed value.
pub fn parse_fault_spec(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan { stall_ms: 50, ..FaultPlan::default() };
    for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("MONDRIAN_FAULT entry {part:?} is not key=value"))?;
        let (key, value) = (key.trim(), value.trim());
        let int = || -> Result<u64, String> {
            value.parse::<u64>().map_err(|_| {
                format!("MONDRIAN_FAULT {key}={value:?} must be a non-negative integer")
            })
        };
        match key {
            "run" => plan.run = int()? as usize,
            "panic_at_event" => plan.panic_at_event = Some(int()?),
            "stall_at_event" => plan.stall_at_event = Some(int()?),
            "stall_ms" => plan.stall_ms = int()?,
            "corrupt_digest_stage" => plan.corrupt_digest_stage = Some(int()? as usize),
            "panic_in_vault_poll" => {
                plan.panic_in_vault_poll = match value {
                    "true" => true,
                    "false" => false,
                    _ => {
                        return Err(format!(
                            "MONDRIAN_FAULT panic_in_vault_poll={value:?} must be true or false"
                        ))
                    }
                }
            }
            "times" => plan.times = Some(int()?),
            other => return Err(format!("MONDRIAN_FAULT has unknown key {other:?}")),
        }
    }
    Ok(plan)
}

fn parse_system(name: &str) -> Result<SystemKind, String> {
    SystemKind::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(name)).ok_or_else(|| {
        let known: Vec<&str> = SystemKind::ALL.iter().map(|k| k.name()).collect();
        format!("unknown system {name:?}; expected one of {known:?} or \"all\"")
    })
}

fn parse_topology(v: &Value) -> Result<bool, String> {
    match v.as_str() {
        Some("tiny") => Ok(true),
        Some("scaled") => Ok(false),
        _ => Err("topology entries must be \"tiny\" or \"scaled\"".into()),
    }
}

fn get_u64(table: &Value, ctx: &str, key: &str) -> Result<Option<u64>, String> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => match v.as_int() {
            Some(i) if i >= 0 => Ok(Some(i as u64)),
            _ => Err(format!("{ctx} must be a non-negative integer")),
        },
    }
}

fn get_usize(table: &Value, ctx: &str, key: &str) -> Result<Option<usize>, String> {
    Ok(get_u64(table, ctx, key)?.map(|v| v as usize))
}

fn int_list(v: &Value, ctx: &str) -> Result<Vec<i64>, String> {
    let items = v.as_array().ok_or_else(|| format!("{ctx} must be an array"))?;
    if items.is_empty() {
        return Err(format!("{ctx} is empty"));
    }
    items
        .iter()
        .map(|i| match i.as_int() {
            Some(i) if i >= 0 => Ok(i),
            _ => Err(format!("{ctx} entries must be non-negative integers")),
        })
        .collect()
}

fn float_list(v: &Value, ctx: &str) -> Result<Vec<f64>, String> {
    let items = v.as_array().ok_or_else(|| format!("{ctx} must be an array"))?;
    if items.is_empty() {
        return Err(format!("{ctx} is empty"));
    }
    items
        .iter()
        .map(|i| i.as_float().ok_or_else(|| format!("{ctx} entries must be numbers")))
        .collect()
}

fn parse_input_edge(v: &Value) -> Result<StageInput, String> {
    match (v.as_str(), v.as_int()) {
        (Some("prev"), _) => Ok(StageInput::Prev),
        (Some("source"), _) => Ok(StageInput::Source),
        (_, Some(i)) if i >= 0 => Ok(StageInput::Stage(i as usize)),
        _ => Err("input edges must be \"prev\", \"source\", or an earlier stage index".into()),
    }
}

fn parse_stage(s: &Value) -> Result<(Stage, Option<String>), String> {
    let op = s.get("op").and_then(Value::as_str).ok_or("missing op (string)")?;
    let op_keys: &[&str] = match op {
        "filter" => &["modulus", "remainder"],
        "lookup_key" => &["key"],
        "map" => &["key_mul", "key_add"],
        "map_values" => &["mul", "add"],
        "flat_map" => &["fanout"],
        "join" => &["build"],
        _ => &[],
    };
    let mut allowed = vec!["op", "input", "name"];
    allowed.extend_from_slice(op_keys);
    check_keys(s, &format!("[[stage]] op = {op:?}"), &allowed)?;
    let name = match s.get("name") {
        None => None,
        Some(v) => {
            let name = v.as_str().ok_or("stage name must be a string")?;
            if name.is_empty() {
                return Err("stage name must be non-empty".into());
            }
            Some(name.to_string())
        }
    };
    let u = |key: &str, default: u64| -> Result<u64, String> {
        get_u64(s, key, key).map(|v| v.unwrap_or(default))
    };
    let spec = match op {
        "filter" => {
            let modulus = u("modulus", 10)?;
            if modulus == 0 {
                return Err("filter.modulus must be non-zero".into());
            }
            StageSpec::Filter { modulus, remainder: u("remainder", 0)? }
        }
        "lookup_key" => StageSpec::LookupKey { key: u("key", 0)? },
        "map" => StageSpec::Map { key_mul: u("key_mul", 1)?, key_add: u("key_add", 1)? },
        "map_values" => StageSpec::MapValues { mul: u("mul", 3)?, add: u("add", 1)? },
        "union" => StageSpec::Union,
        "cogroup" => StageSpec::Cogroup,
        "flat_map" => {
            let fanout = u("fanout", 2)?;
            if !(1..=32).contains(&fanout) {
                return Err("flat_map.fanout must be between 1 and 32".into());
            }
            StageSpec::FlatMap { fanout }
        }
        "group_by_key" => StageSpec::GroupByKey,
        "reduce_by_key" => StageSpec::ReduceByKey,
        "count_by_key" => StageSpec::CountByKey,
        "aggregate_by_key" => StageSpec::AggregateByKey,
        "sort_by_key" => StageSpec::SortByKey,
        "join" => {
            let build = match s.get("build") {
                None => BuildSide::Dimension,
                Some(v) => match (v.as_str(), v.as_int()) {
                    (Some("dimension"), _) => BuildSide::Dimension,
                    (_, Some(i)) if i >= 0 => BuildSide::Stage(i as usize),
                    _ => {
                        return Err(
                            "join.build must be \"dimension\" or an earlier stage index".into()
                        )
                    }
                },
            };
            StageSpec::Join { build }
        }
        other => {
            return Err(format!(
                "unknown op {other:?}; expected one of filter, lookup_key, map, map_values, \
                 union, cogroup, flat_map, group_by_key, reduce_by_key, count_by_key, \
                 aggregate_by_key, sort_by_key, join"
            ))
        }
    };
    // A scalar edge or an `input = [...]` list — multi-input stages
    // (union, cogroup) name every feeder explicitly.
    let inputs = match s.get("input") {
        None => vec![StageInput::Prev],
        Some(v) => match v.as_array() {
            Some(edges) => {
                if edges.is_empty() {
                    return Err("input = [...] must name at least one edge".into());
                }
                edges.iter().map(parse_input_edge).collect::<Result<_, _>>()?
            }
            None => vec![parse_input_edge(v)?],
        },
    };
    Ok((Stage { spec, inputs }, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        [campaign]
        name = "t"
        systems = ["mondrian"]

        [[stage]]
        op = "filter"

        [[stage]]
        op = "reduce_by_key"

        [[stage]]
        op = "sort_by_key"
    "#;

    #[test]
    fn minimal_manifest_fills_defaults() {
        let m = Manifest::parse(MINIMAL, Format::Toml).unwrap();
        assert_eq!(m.name, "t");
        assert_eq!(m.systems, vec![SystemKind::Mondrian]);
        assert!(m.tiny);
        assert_eq!(m.tuples_per_vault, vec![256]);
        assert_eq!(m.seeds, vec![0x6d6f6e64]);
        assert_eq!(m.thetas, vec![None]);
        assert_eq!(m.topologies, vec![true]);
        assert_eq!(m.underprovision, vec![None]);
        assert_eq!(m.concurrency, Concurrency::Serial);
        assert_eq!(m.sim_threads, None);
        assert_eq!(m.stages.len(), 3);
        assert_eq!(m.stages[0].spec, StageSpec::Filter { modulus: 10, remainder: 0 });
        assert_eq!(m.stages[0].inputs, vec![StageInput::Prev]);
        assert_eq!(m.runs().len(), 1);
    }

    #[test]
    fn multi_input_stages_parse_edge_lists() {
        let text = r#"
            [campaign]
            name = "multi"
            systems = ["mondrian"]

            [[stage]]
            op = "filter"

            [[stage]]
            op = "flat_map"
            fanout = 3

            [[stage]]
            op = "map_values"
            input = "source"

            [[stage]]
            op = "union"
            input = [1, 2]

            [[stage]]
            op = "cogroup"
            input = [1, 2]
        "#;
        let m = Manifest::parse(text, Format::Toml).unwrap();
        assert_eq!(m.stages[1].spec, StageSpec::FlatMap { fanout: 3 });
        assert_eq!(m.stages[3].spec, StageSpec::Union);
        assert_eq!(m.stages[3].inputs, vec![StageInput::Stage(1), StageInput::Stage(2)]);
        assert_eq!(m.stages[4].inputs, vec![StageInput::Stage(1), StageInput::Stage(2)]);

        // Arity violations surface at parse time via pipeline validation.
        let one_edge = text.replace(
            "input = [1, 2]\n\n            [[stage]]",
            "input = [1]\n\n            [[stage]]",
        );
        assert!(Manifest::parse(&one_edge, Format::Toml).unwrap_err().contains("at least 2"));
        let bad_fanout = text.replace("fanout = 3", "fanout = 99");
        assert!(Manifest::parse(&bad_fanout, Format::Toml)
            .unwrap_err()
            .contains("fanout must be between"));
        let empty = text.replace(
            "input = [1, 2]\n\n            [[stage]]",
            "input = []\n\n            [[stage]]",
        );
        assert!(Manifest::parse(&empty, Format::Toml).unwrap_err().contains("at least one edge"));
    }

    #[test]
    fn sweep_lists_cross_product() {
        let text = format!(
            "{MINIMAL}\n[sweep]\ntuples_per_vault = [256, 512]\nseeds = [1, 2, 3]\n\
             zipf_theta = [0.6, 0.9]\nunderprovision = [0.5, 1.0]\n"
        );
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        let runs = m.runs();
        assert_eq!(runs.len(), 2 * 3 * 2 * 2);
        assert_eq!(
            runs[0],
            RunSpec {
                system: SystemKind::Mondrian,
                tiny: true,
                tuples_per_vault: 256,
                seed: 1,
                theta: Some(0.6),
                underprovision: Some(0.5),
            }
        );
        let last = runs.last().unwrap();
        assert_eq!((last.tuples_per_vault, last.seed), (512, 3));
        assert_eq!((last.theta, last.underprovision), (Some(0.9), Some(1.0)));
        // Theta sweeps override the base distribution.
        assert_eq!(m.config_for(runs[0]).dist, KeyDist::Zipf(0.6));
        assert_eq!(m.config_for(runs[0]).underprovision, Some(0.5));
    }

    #[test]
    fn topology_sweep_and_concurrency_knob() {
        let text = MINIMAL.replace(
            "systems = [\"mondrian\"]",
            "systems = [\"mondrian\"]\nconcurrency = \"branch\"",
        ) + "\n[sweep]\ntopology = [\"tiny\", \"scaled\"]\n";
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.concurrency, Concurrency::Branch);
        assert_eq!(m.topologies, vec![true, false]);
        let runs = m.runs();
        assert_eq!(runs.len(), 2);
        assert!(runs[0].tiny && !runs[1].tiny);
        assert_eq!(m.config_for(runs[0]).concurrency, Concurrency::Branch);
    }

    #[test]
    fn stream_concurrency_parses() {
        let text = MINIMAL.replace(
            "systems = [\"mondrian\"]",
            "systems = [\"mondrian\"]\nconcurrency = \"stream\"",
        );
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.concurrency, Concurrency::Stream);
        assert_eq!(m.config_for(m.runs()[0]).concurrency, Concurrency::Stream);
    }

    #[test]
    fn auto_concurrency_parses() {
        let text = MINIMAL.replace(
            "systems = [\"mondrian\"]",
            "systems = [\"mondrian\"]\nconcurrency = \"auto\"",
        );
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.concurrency, Concurrency::Auto);
        assert_eq!(m.config_for(m.runs()[0]).concurrency, Concurrency::Auto);
    }

    #[test]
    fn sim_threads_knob_parses_and_reaches_config() {
        let text = MINIMAL
            .replace("systems = [\"mondrian\"]", "systems = [\"mondrian\"]\nsim_threads = 4");
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.sim_threads, Some(4));
        assert_eq!(m.config_for(m.runs()[0]).sim_threads, 4);
        // Absent, the config keeps the follow-the-executor default.
        let default = Manifest::parse(MINIMAL, Format::Toml).unwrap();
        assert_eq!(default.config_for(default.runs()[0]).sim_threads, 0);
        let zero = MINIMAL
            .replace("systems = [\"mondrian\"]", "systems = [\"mondrian\"]\nsim_threads = 0");
        assert!(Manifest::parse(&zero, Format::Toml)
            .unwrap_err()
            .contains("sim_threads must be at least 1"));
    }

    #[test]
    fn all_expands_to_every_system() {
        let text = MINIMAL.replace("[\"mondrian\"]", "[\"all\"]");
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.systems.len(), SystemKind::ALL.len());
    }

    #[test]
    fn json_manifests_parse_too() {
        let text = r#"{
            "campaign": {"name": "j", "systems": ["cpu"], "seed": 3},
            "stage": [
                {"op": "count_by_key"},
                {"op": "filter", "input": "source"},
                {"op": "join", "build": 0, "input": 1}
            ]
        }"#;
        let m = Manifest::parse(text, Format::Json).unwrap();
        assert_eq!(m.systems, vec![SystemKind::Cpu]);
        assert_eq!(m.seeds, vec![3]);
        assert_eq!(m.stages[1].inputs, vec![StageInput::Source]);
        assert_eq!(m.stages[2].spec, StageSpec::Join { build: BuildSide::Stage(0) });
        assert_eq!(m.stages[2].inputs, vec![StageInput::Stage(1)]);
    }

    #[test]
    fn schema_errors_are_descriptive() {
        let no_stage = "[campaign]\nname = \"x\"\n";
        assert!(Manifest::parse(no_stage, Format::Toml).unwrap_err().contains("[[stage]]"));
        let bad_system = MINIMAL.replace("mondrian", "cray");
        assert!(Manifest::parse(&bad_system, Format::Toml).unwrap_err().contains("unknown system"));
        let bad_op = MINIMAL.replace("\"filter\"", "\"frobnicate\"");
        assert!(Manifest::parse(&bad_op, Format::Toml).unwrap_err().contains("unknown op"));
        let bad_conc = MINIMAL.replace(
            "systems = [\"mondrian\"]",
            "systems = [\"mondrian\"]\nconcurrency = \"warp\"",
        );
        assert!(Manifest::parse(&bad_conc, Format::Toml).unwrap_err().contains("concurrency"));
        // Forward references are caught at parse time via validate().
        let forward = r#"
            [campaign]
            name = "x"
            [[stage]]
            op = "join"
            build = 3
        "#;
        assert!(Manifest::parse(forward, Format::Toml)
            .unwrap_err()
            .contains("not an earlier stage"));
        let forward_input = r#"
            [campaign]
            name = "x"
            [[stage]]
            op = "sort_by_key"
            input = 2
        "#;
        assert!(Manifest::parse(forward_input, Format::Toml)
            .unwrap_err()
            .contains("not an earlier stage"));
    }

    #[test]
    fn limits_assertions_and_faults_parse() {
        let text = format!(
            "{MINIMAL}\n\
             [limits]\n\
             wall_time_ms = 60000\n\
             max_events = 1000\n\
             max_sweep_points = 4\n\
             max_memory_bytes = 1048576\n\
             [assertions]\n\
             max_makespan_ps = 900000000\n\
             matches_serial = true\n\
             stage_digests = [\"0011223344556677\", \"8899aabbccddeeff\", \"0000000000000001\"]\n\
             [faults]\n\
             run = 1\n\
             panic_at_event = 100\n\
             times = 1\n"
        );
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(
            m.limits,
            Limits {
                wall_time_ms: Some(60000),
                max_events: Some(1000),
                max_sweep_points: Some(4),
                max_memory_bytes: Some(1_048_576),
            }
        );
        assert_eq!(m.assertions.max_makespan_ps, Some(900_000_000));
        assert!(m.assertions.matches_serial);
        assert_eq!(
            m.assertions.stage_digests,
            Some(vec![0x0011_2233_4455_6677, 0x8899_aabb_ccdd_eeff, 1])
        );
        let fault = m.fault.unwrap();
        assert_eq!((fault.run, fault.panic_at_event, fault.times), (1, Some(100), Some(1)));

        // Absent sections give inert defaults.
        let plain = Manifest::parse(MINIMAL, Format::Toml).unwrap();
        assert_eq!(plain.limits, Limits::default());
        assert_eq!(plain.assertions, Assertions::default());
        assert!(plain.fault.is_none());
    }

    #[test]
    fn unknown_keys_are_rejected_with_exact_messages() {
        // Snapshot the messages: the CLI surfaces them verbatim under the
        // invalid_manifest exit code, so they are part of the contract.
        let top = format!("{MINIMAL}\n[limitz]\nmax_events = 1\n");
        assert_eq!(
            Manifest::parse(&top, Format::Toml).unwrap_err(),
            "unknown key \"limitz\" in the manifest; expected one of \
             [\"assertions\", \"campaign\", \"faults\", \"limits\", \"stage\", \"sweep\"]"
        );
        let campaign = MINIMAL.replace("name = \"t\"", "name = \"t\"\nretries = 3");
        assert_eq!(
            Manifest::parse(&campaign, Format::Toml).unwrap_err(),
            "unknown key \"retries\" in [campaign]; expected one of \
             [\"concurrency\", \"jobs\", \"key_bound\", \"key_dist\", \"name\", \"seed\", \
             \"sim_threads\", \"systems\", \"topology\", \"tuples_per_vault\", \"zipf_theta\"]"
        );
        let stage = MINIMAL.replace("op = \"filter\"", "op = \"filter\"\nmodulos = 2");
        assert_eq!(
            Manifest::parse(&stage, Format::Toml).unwrap_err(),
            "stage 0: unknown key \"modulos\" in [[stage]] op = \"filter\"; expected one of \
             [\"input\", \"modulus\", \"name\", \"op\", \"remainder\"]"
        );
        // A key valid for another op is still unknown for this one.
        let cross = MINIMAL.replace("op = \"filter\"", "op = \"filter\"\nfanout = 2");
        assert!(Manifest::parse(&cross, Format::Toml)
            .unwrap_err()
            .contains("unknown key \"fanout\""));
        let sweep = format!("{MINIMAL}\n[sweep]\nseed = [1, 2]\n");
        assert!(Manifest::parse(&sweep, Format::Toml)
            .unwrap_err()
            .contains("unknown key \"seed\" in [sweep]"));
        let limits = format!("{MINIMAL}\n[limits]\nwalltime = 5\n");
        assert!(Manifest::parse(&limits, Format::Toml)
            .unwrap_err()
            .contains("unknown key \"walltime\" in [limits]"));
    }

    #[test]
    fn duplicate_stage_names_are_rejected() {
        let named = MINIMAL
            .replace("op = \"filter\"", "op = \"filter\"\nname = \"a\"")
            .replace("op = \"reduce_by_key\"", "op = \"reduce_by_key\"\nname = \"a\"");
        assert_eq!(
            Manifest::parse(&named, Format::Toml).unwrap_err(),
            "stage 1: duplicate stage name \"a\" (already used by stage 0)"
        );
        let distinct = MINIMAL
            .replace("op = \"filter\"", "op = \"filter\"\nname = \"a\"")
            .replace("op = \"reduce_by_key\"", "op = \"reduce_by_key\"\nname = \"b\"");
        let m = Manifest::parse(&distinct, Format::Toml).unwrap();
        assert_eq!(m.stage_names, vec![Some("a".into()), Some("b".into()), None]);
    }

    #[test]
    fn stage_digest_assertions_validate_shape() {
        let short = format!("{MINIMAL}\n[assertions]\nstage_digests = [\"0011223344556677\"]\n");
        assert!(Manifest::parse(&short, Format::Toml)
            .unwrap_err()
            .contains("1 entries but the pipeline has 3 stages"));
        let bad_hex = format!("{MINIMAL}\n[assertions]\nstage_digests = [\"xyz\", \"a\", \"b\"]\n");
        assert!(Manifest::parse(&bad_hex, Format::Toml)
            .unwrap_err()
            .contains("must be 16 hex characters"));
    }

    #[test]
    fn fault_env_spec_parses() {
        let plan = parse_fault_spec("run=2; panic_at_event=50; times=1").unwrap();
        assert_eq!((plan.run, plan.panic_at_event, plan.times), (2, Some(50), Some(1)));
        let poll = parse_fault_spec("panic_in_vault_poll=true").unwrap();
        assert!(poll.panic_in_vault_poll);
        assert!(parse_fault_spec("frob=1").unwrap_err().contains("unknown key \"frob\""));
        assert!(parse_fault_spec("run").unwrap_err().contains("not key=value"));
        assert!(parse_fault_spec("run=x").unwrap_err().contains("non-negative integer"));
    }

    #[test]
    fn format_detection() {
        assert_eq!(Format::from_path("a/b.toml").unwrap(), Format::Toml);
        assert_eq!(Format::from_path("b.json").unwrap(), Format::Json);
        assert!(Format::from_path("b.yaml").is_err());
    }
}
