//! `mondrian profile`: render a result artifact's unified `metrics`
//! block as a human-readable profile — the top phases by simulated time,
//! the memory / NoC / cache traffic breakdown, and the FR-FCFS
//! scheduler-queue occupancy histogram.
//!
//! Reads the top-level campaign rollup (schema 5+), so the profile
//! covers every run of the sweep at once; `mondrian explain` remains the
//! per-run view.

use std::collections::BTreeMap;

use crate::value::{parse_json, Value};

/// How many phases the top-phases table shows.
const TOP_PHASES: usize = 10;

/// The numeric entries of one metrics group, in key order.
fn group_entries(metrics: &Value, group: &str) -> Vec<(String, f64)> {
    let Some(Value::Table(t)) = metrics.get(group) else {
        return Vec::new();
    };
    t.iter()
        .filter_map(|(k, v)| match v {
            Value::Int(n) => Some((k.clone(), *n as f64)),
            Value::Float(f) => Some((k.clone(), *f)),
            _ => None,
        })
        .collect()
}

fn fmt_count(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

fn render_group(out: &mut String, title: &str, entries: &[(String, f64)]) {
    if entries.is_empty() {
        return;
    }
    out.push_str(&format!("{title}:\n"));
    for (k, v) in entries {
        out.push_str(&format!("  {:<28} {:>16}\n", k, fmt_count(*v)));
    }
    out.push('\n');
}

/// Renders the queue-depth histogram (`mem.queue_depth.b{lo}` buckets)
/// with proportional bars.
fn render_queue_depth(out: &mut String, mem: &[(String, f64)]) {
    let mut buckets: Vec<(u64, f64)> = mem
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix("queue_depth.b").and_then(|lo| lo.parse::<u64>().ok()).map(|lo| (lo, *v))
        })
        .collect();
    if buckets.is_empty() {
        return;
    }
    buckets.sort_by_key(|&(lo, _)| lo);
    let total: f64 = buckets.iter().map(|&(_, n)| n).sum();
    let peak = buckets.iter().map(|&(_, n)| n).fold(0.0, f64::max).max(1.0);
    out.push_str("queue depth at arrival (FR-FCFS scheduler queues):\n");
    for (i, &(lo, n)) in buckets.iter().enumerate() {
        let hi = buckets.get(i + 1).map(|&(next, _)| format!("{}", next - 1));
        let range = match hi {
            Some(hi) if hi == lo.to_string() => format!("{lo}"),
            Some(hi) => format!("{lo}-{hi}"),
            None => format!("{lo}+"),
        };
        let share = if total > 0.0 { n / total * 100.0 } else { 0.0 };
        let bar = "#".repeat(((n / peak) * 40.0).round() as usize);
        out.push_str(&format!("  {range:>7} {:>14} {share:>5.1}%  {bar}\n", fmt_count(n)));
    }
    out.push('\n');
}

/// Renders the profile of a result artifact.
///
/// # Errors
///
/// Returns a description of the problem when the text is not valid JSON
/// or carries no `metrics` block (artifacts before schema 5).
pub fn profile(text: &str) -> Result<String, String> {
    let doc = parse_json(text)?;
    let metrics =
        doc.get("metrics").ok_or("artifact has no metrics block (needs schema_version >= 5)")?;
    let campaign = doc.get("campaign").and_then(Value::as_str).unwrap_or("?");
    let runs = doc.get("runs").and_then(Value::as_array).map_or(0, <[Value]>::len);

    let mut out = String::new();
    out.push_str(&format!("profile of campaign \"{campaign}\" ({runs} runs)\n\n"));

    // Top phases by simulated time.
    let mut phases = group_entries(metrics, "phase_ps");
    phases.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let total_ps: f64 = phases.iter().map(|&(_, v)| v).sum();
    if !phases.is_empty() {
        out.push_str(&format!(
            "top phases by simulated time (of {:.3} µs total):\n",
            total_ps / 1e6
        ));
        for (label, ps) in phases.iter().take(TOP_PHASES) {
            out.push_str(&format!(
                "  {:<28} {:>14.3} µs {:>5.1}%\n",
                label,
                ps / 1e6,
                if total_ps > 0.0 { ps / total_ps * 100.0 } else { 0.0 },
            ));
        }
        if phases.len() > TOP_PHASES {
            let rest: f64 = phases[TOP_PHASES..].iter().map(|&(_, v)| v).sum();
            out.push_str(&format!(
                "  ({} more phases, {:.3} µs)\n",
                phases.len() - TOP_PHASES,
                rest / 1e6,
            ));
        }
        out.push('\n');
    }

    let engine = group_entries(metrics, "engine");
    render_group(&mut out, "engine", &engine);
    let mem = group_entries(metrics, "mem");
    let traffic: Vec<(String, f64)> =
        mem.iter().filter(|(k, _)| !k.starts_with("queue_depth.")).cloned().collect();
    render_group(&mut out, "memory traffic", &traffic);
    render_queue_depth(&mut out, &mem);
    render_group(&mut out, "network-on-chip", &group_entries(metrics, "noc"));
    render_group(&mut out, "caches", &group_entries(metrics, "cache"));
    let host = group_entries(metrics, "host");
    render_group(&mut out, "host (nondeterministic, --timings only)", &host);

    Ok(out)
}

/// Convenience: the artifact's metrics tree flattened back to
/// dot-separated keys, for tests and tooling.
pub fn flatten_metrics(metrics: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Value::Table(groups) = metrics {
        for (group, sub) in groups {
            if let Value::Table(leaves) = sub {
                for (leaf, v) in leaves {
                    let num = match v {
                        Value::Int(n) => *n as f64,
                        Value::Float(f) => *f,
                        _ => continue,
                    };
                    out.insert(format!("{group}.{leaf}"), num);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARTIFACT: &str = r#"{
        "campaign": "smoke",
        "schema_version": 5,
        "metrics": {
            "engine": {"events": 1200, "instructions": 5000},
            "phase_ps": {"partition.scan": 4000000, "probe.join": 2000000,
                         "output": 1000000},
            "mem": {"read_bytes": 4096, "write_bytes": 2048,
                    "queue_depth.b0": 90, "queue_depth.b1": 8,
                    "queue_depth.b2": 2},
            "noc": {"mesh_hops": 77, "mesh_bit_mm": 12.5},
            "cache": {"l1_hits": 10}
        },
        "runs": [{}]
    }"#;

    #[test]
    fn profile_renders_all_sections() {
        let text = profile(ARTIFACT).unwrap();
        assert!(text.contains("profile of campaign \"smoke\" (1 runs)"));
        assert!(text.contains("top phases by simulated time"));
        // Sorted by time, descending.
        let scan = text.find("partition.scan").unwrap();
        let join = text.find("probe.join").unwrap();
        assert!(scan < join);
        assert!(text.contains("queue depth at arrival"));
        assert!(text.contains("read_bytes"));
        assert!(text.contains("mesh_hops"));
        assert!(text.contains("l1_hits"));
        assert!(!text.contains("host ("), "no host section without --timings data");
    }

    #[test]
    fn queue_depth_ranges_and_bars() {
        let text = profile(ARTIFACT).unwrap();
        // b0 covers exactly depth 0, b1 exactly 1, last bucket open-ended.
        assert!(text.contains("      0 "));
        assert!(text.contains("     2+ "));
        // The fullest bucket gets the longest bar.
        let b0_line = text.lines().find(|l| l.trim_start().starts_with("0 ")).unwrap();
        assert!(b0_line.matches('#').count() == 40);
    }

    #[test]
    fn persistent_cache_counters_render_as_engine_rows() {
        // Schema 7 `--timings` artifacts roll the persistent-store
        // counters up under `engine.cache.*`; the engine section must
        // render them like any other counter.
        let artifact = ARTIFACT.replace(
            r#""engine": {"events": 1200, "instructions": 5000}"#,
            r#""engine": {"events": 1200, "instructions": 5000,
                         "cache.hits": 9, "cache.misses": 3,
                         "cache.bytes": 4096}"#,
        );
        let text = profile(&artifact).unwrap();
        assert!(text.contains("cache.hits"));
        assert!(text.contains("cache.misses"));
        assert!(text.contains("cache.bytes"));
        let doc = parse_json(&artifact).unwrap();
        let flat = flatten_metrics(doc.get("metrics").unwrap());
        assert_eq!(flat.get("engine.cache.hits"), Some(&9.0));
    }

    #[test]
    fn pre_schema5_artifacts_are_rejected() {
        assert!(profile(r#"{"campaign": "old", "runs": []}"#).is_err());
        assert!(profile("not json").is_err());
    }

    #[test]
    fn flatten_inverts_grouping() {
        let doc = parse_json(ARTIFACT).unwrap();
        let flat = flatten_metrics(doc.get("metrics").unwrap());
        assert_eq!(flat.get("engine.events"), Some(&1200.0));
        assert_eq!(flat.get("mem.queue_depth.b1"), Some(&8.0));
        assert_eq!(flat.get("noc.mesh_bit_mm"), Some(&12.5));
    }
}
