//! The `mondrian` campaign runner.
//!
//! ```text
//! mondrian run <manifest.(toml|json)> [--out result.json] [--quiet]
//! mondrian explain <manifest.(toml|json)>
//! mondrian list-systems
//! ```
//!
//! `run` executes every (system × sweep) combination of the manifest's
//! pipeline, prints a per-run summary, and writes a deterministic
//! machine-readable `result.json`. The process exits non-zero if any
//! stage fails verification.

use std::process::ExitCode;

use mondrian_cli::campaign::{run_campaign, run_line};
use mondrian_cli::manifest::{Format, Manifest};
use mondrian_core::{SystemConfig, SystemKind};

const USAGE: &str = "\
the Mondrian Data Engine campaign runner

usage:
  mondrian run <manifest.(toml|json)> [--out <path>] [--quiet]
      run every (system x sweep) combination of the manifest's pipeline,
      print a summary, and write the result artifact (default: result.json)
  mondrian explain <manifest.(toml|json)>
      show the parsed campaign and the Table 1 lowering of every stage
      without simulating anything
  mondrian list-systems
      list the evaluated system configurations
  mondrian help
      show this message

manifest schema: see README.md and examples/manifests/";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("list-systems") => cmd_list_systems(),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(true)
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn load_manifest(path: &str) -> Result<Manifest, String> {
    let format = Format::from_path(path)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Manifest::parse(&text, format).map_err(|e| format!("{path}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let mut manifest_path: Option<&str> = None;
    let mut out_path = "result.json".to_string();
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_path = it.next().ok_or("--out needs a path")?.clone();
            }
            "--quiet" => quiet = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => {
                if manifest_path.replace(path).is_some() {
                    return Err("exactly one manifest path expected".into());
                }
            }
        }
    }
    let path = manifest_path.ok_or("usage: mondrian run <manifest> [--out <path>] [--quiet]")?;
    let manifest = load_manifest(path)?;

    if !quiet {
        println!(
            "campaign {:?}: {} stages on {} system(s), {} run(s)\n",
            manifest.name,
            manifest.stages.len(),
            manifest.systems.len(),
            manifest.runs().len(),
        );
    }
    let campaign = run_campaign(&manifest, |run| {
        if !quiet {
            println!("{}", run_line(run));
        }
    });
    if !quiet {
        println!();
        // Per-stage detail of the first run as a worked example.
        if let Some(first) = campaign.runs.first() {
            println!("{}", first.report.summary_table());
        }
    }
    let json = campaign.to_json();
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "wrote {out_path} ({} runs, {})",
        campaign.runs.len(),
        if campaign.verified() { "all verified" } else { "VERIFICATION FAILURES" },
    );
    Ok(campaign.verified())
}

fn cmd_explain(args: &[String]) -> Result<bool, String> {
    let path = match args {
        [path] => path,
        _ => return Err("usage: mondrian explain <manifest>".into()),
    };
    let manifest = load_manifest(path)?;
    println!("campaign {:?}", manifest.name);
    println!(
        "  topology: {}, key_dist: {:?}, key_bound: {:?}",
        if manifest.tiny { "tiny (1 HMC x 4 vaults)" } else { "scaled (4 HMC x 16 vaults)" },
        manifest.dist,
        manifest.key_bound,
    );
    println!("  systems: {:?}", manifest.systems.iter().map(SystemKind::name).collect::<Vec<_>>());
    println!("  tuples_per_vault: {:?}", manifest.tuples_per_vault);
    println!("  seeds: {:?}", manifest.seeds);
    println!("\nstage lowering (Table 1):");
    for (i, stage) in manifest.stages.iter().enumerate() {
        println!(
            "  {i}: {:<18} -> {:?} -> {} operator",
            stage.name(),
            stage.spark_op(),
            stage.basic_operator(),
        );
    }
    println!("\n{} total runs", manifest.runs().len());
    Ok(true)
}

fn cmd_list_systems() -> Result<bool, String> {
    for kind in SystemKind::ALL {
        println!("{}", SystemConfig::scaled(kind).table3_sheet());
        println!();
    }
    Ok(true)
}
