//! The `mondrian` campaign runner.
//!
//! ```text
//! mondrian run <manifest.(toml|json)> [--out result.json] [--quiet]
//!              [--concurrency serial|branch|stream|auto] [--jobs N]
//!              [--sim-threads N] [--timings]
//!              [--cache-dir <path>] [--no-cache]
//! mondrian bench <manifest.(toml|json)> [--out BENCH_sweep.json]
//!                [--history BENCH_history.jsonl|none]
//!                [--jobs-list 1,2,4] [--repeat N]
//!                [--engine] [--sim-threads-list 1,2,4] [--cache]
//! mondrian cache <stats|clear|prune --max-bytes N> [--cache-dir <path>]
//! mondrian explain <manifest.(toml|json)> [result.json]
//! mondrian diff <a/result.json> <b/result.json> [--fail-on-regression <pct>]
//! mondrian list-systems
//! ```
//!
//! `run` executes every (system × sweep) combination of the manifest's
//! pipeline — fanned over `--jobs` worker threads — prints a per-run
//! summary, and writes a deterministic machine-readable `result.json`
//! (byte-identical for every worker count). The process exits with the
//! standardized code of the campaign's exit reason (see `ExitReason`
//! and the README's exit-code table).

use std::fs;
use std::process::ExitCode;
use std::sync::Arc;

use mondrian_cli::bench::{bench, bench_cache, bench_engine, host_cores};
use mondrian_cli::campaign::{resolve_jobs, run_campaign_store, run_line, store_salt, ExitReason};
use mondrian_cli::diff::diff;
use mondrian_cli::junit::junit_xml;
use mondrian_cli::manifest::{parse_fault_spec, Format, Manifest};
use mondrian_cli::profile::profile;
use mondrian_cli::value::{parse_json, Value};
use mondrian_core::{SystemConfig, SystemKind};
use mondrian_obs::{ProgressEvent, ProgressSink, Tracer};
use mondrian_pipeline::{plan, trace_run, Concurrency, StageInput};
use mondrian_store::{resolve_root, Store};

const USAGE: &str = "\
the Mondrian Data Engine campaign runner

usage:
  mondrian run <manifest.(toml|json)> [--out <path>] [--quiet]
               [--concurrency serial|branch|stream|auto] [--jobs N]
               [--sim-threads N] [--timings] [--trace <path>]
               [--progress jsonl] [--junit <path>]
               [--cache-dir <path>] [--no-cache]
      run every (system x sweep) combination of the manifest's pipeline,
      print a summary, and write the result artifact (default: result.json);
      --concurrency overrides the manifest's scheduling knob; --jobs sets
      the worker-thread count (precedence: --jobs, MONDRIAN_JOBS, the
      manifest's jobs knob, all host cores) and never changes the
      artifact, which stays byte-identical for every worker count;
      --sim-threads parallelizes each run's engine event loop (batched
      vault ticks + tail drain) on N host threads — execution speed
      only, the artifact stays byte-identical;
      --timings adds metrics.host.sim_wall_ms to each run (the one
      nondeterministic subtree, excluded from digests and ignored by
      mondrian diff) plus the engine.cache.* counters and per-run
      memoized_persistent cache-provenance flags; --trace writes a
      Chrome trace-event JSON timeline (simulated picoseconds; load in
      Perfetto) that is byte-identical for every --jobs value — tracing
      disables the persistent cache so every stage replays live;
      --progress jsonl streams one JSON line per stage/wave/sweep-point
      event to stderr; --junit writes a JUnit XML report (one testcase
      per sweep point, simulated-seconds times);
      results persist to a cross-campaign cache (--cache-dir, else
      MONDRIAN_CACHE, else ~/.cache/mondrian): a repeated campaign
      simulates nothing and an edited manifest re-simulates only the
      affected DAG suffix, with the artifact byte-identical to a cold
      run; --no-cache disables it
  mondrian profile <result.json>
      render a result artifact's metrics block (schema 5+): top phases
      by simulated time, memory/NoC/cache traffic, and the FR-FCFS
      scheduler-queue depth histogram
  mondrian bench <manifest.(toml|json)> [--out <path>] [--history <path>|none]
                 [--jobs-list 1,2,4] [--repeat N]
                 [--engine] [--sim-threads-list 1,2,4] [--cache]
      run the campaign once per jobs value, check every artifact is
      byte-identical to the single-worker baseline, write the wall-clock
      sweep (default: BENCH_sweep.json), and append one JSONL trend line
      (commit, host_cores, sim_wall_ms ladder) to the history file
      (default: BENCH_history.jsonl; --history none to skip);
      --engine instead ladders the engine event loop: one campaign per
      (sim_threads x jobs) point from --sim-threads-list x --jobs-list,
      reporting events/sec per point and a determinism fingerprint
      (digest of every point's artifact digest) that must be a single
      value across the whole ladder;
      --cache instead runs a cold/warm ladder against a throwaway
      persistent store: one cold campaign populates it, then --repeat
      warm campaigns must byte-match the cold artifact while simulating
      nothing, with cache_hits recorded per ladder point
  mondrian cache <stats|clear|prune --max-bytes N> [--cache-dir <path>]
      inspect or maintain the persistent result store (--cache-dir, else
      MONDRIAN_CACHE, else ~/.cache/mondrian): stats prints per-kind
      entry counts and sizes; clear deletes every versioned store under
      the cache root; prune evicts least-recently-used entries (by
      journaled campaign recency, file name as the deterministic
      tiebreak) until at most --max-bytes remain
  mondrian explain <manifest.(toml|json)> [result.json]
      show the parsed campaign, the Table 1 lowering of every stage, the
      branch-wave schedule of the plan DAG, the adaptive planner's
      predicted per-stage makespans, and the full sweep cross product —
      without simulating anything; pass a result artifact to render
      predicted-vs-actual per stage
  mondrian diff <a/result.json> <b/result.json> [--fail-on-regression <pct>]
      compare two result artifacts run by run (makespan speedup, energy
      ratio); skipped runs (schema 6+ partial artifacts) are ignored.
      exit codes: 0 compared (and within the regression gate), 1 error,
      20 regression gate exceeded, 21 no matched runs
  mondrian list-systems
      list the evaluated system configurations
  mondrian help
      show this message

exit codes (run): 0 ok, 1 internal_error, 2 invalid_manifest,
  3 assertion_failed, 4 limit_wall_time, 5 limit_events, 6 limit_memory,
  7 limit_sweep_points, 8 worker_panic — a [limits]/[assertions] manifest
  still writes a valid partial result.json (and --junit report) when it
  trips; see the README's \"Limits, assertions & exit codes\" section

manifest schema: see README.md and examples/manifests/";

/// A command error, carrying which standardized exit code it maps to:
/// manifest problems exit `invalid_manifest` (2); everything else —
/// I/O, bad flags — exits `internal_error` (1).
enum CliError {
    /// The manifest (or `MONDRIAN_FAULT`) failed to parse or validate.
    InvalidManifest(String),
    /// Any other failure.
    Internal(String),
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Internal(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError::Internal(message.to_string())
    }
}

/// Silences the default panic printer for cooperative [`Abort`] unwinds
/// (limit trips flow through `panic_any` on their way to `catch_unwind`);
/// genuine panics — including injected ones — still print normally.
fn install_abort_quiet_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<mondrian_core::fault::Abort>().is_none() {
            default_hook(info);
        }
    }));
}

fn main() -> ExitCode {
    install_abort_quiet_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("list-systems") => cmd_list_systems(),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(0)
        }
        Some(other) => Err(CliError::Internal(format!("unknown command {other:?}\n\n{USAGE}"))),
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(CliError::InvalidManifest(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(ExitReason::InvalidManifest.code())
        }
        Err(CliError::Internal(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(ExitReason::InternalError.code())
        }
    }
}

fn load_manifest(path: &str) -> Result<Manifest, CliError> {
    let format = Format::from_path(path).map_err(CliError::InvalidManifest)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut manifest = Manifest::parse(&text, format)
        .map_err(|e| CliError::InvalidManifest(format!("{path}: {e}")))?;
    // The MONDRIAN_FAULT environment variable overrides the manifest's
    // [faults] block — the CI fault-smoke matrix injects faults into
    // stock example manifests without editing them.
    if let Ok(spec) = std::env::var("MONDRIAN_FAULT") {
        if !spec.is_empty() {
            manifest.fault = Some(parse_fault_spec(&spec).map_err(CliError::InvalidManifest)?);
        }
    }
    Ok(manifest)
}

/// `--progress jsonl`: one structured JSON line per execution event on
/// stderr, leaving stdout (and the artifact) untouched.
struct JsonlSink;

impl ProgressSink for JsonlSink {
    fn emit(&self, run: &str, event: &ProgressEvent) {
        eprintln!("{}", event.to_jsonl(run));
    }
}

fn cmd_run(args: &[String]) -> Result<u8, CliError> {
    let mut manifest_path: Option<&str> = None;
    let mut out_path = "result.json".to_string();
    let mut quiet = false;
    let mut timings = false;
    let mut trace_path: Option<String> = None;
    let mut junit_path: Option<String> = None;
    let mut progress_jsonl = false;
    let mut concurrency: Option<Concurrency> = None;
    let mut jobs_flag: Option<usize> = None;
    let mut sim_threads_flag: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_path = it.next().ok_or("--out needs a path")?.clone();
            }
            "--quiet" => quiet = true,
            "--timings" => timings = true,
            "--cache-dir" => {
                cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?.clone());
            }
            "--no-cache" => no_cache = true,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            "--junit" => {
                junit_path = Some(it.next().ok_or("--junit needs a path")?.clone());
            }
            "--progress" => match it.next().map(String::as_str) {
                Some("jsonl") => progress_jsonl = true,
                _ => return Err("--progress needs \"jsonl\"".into()),
            },
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a worker count")?;
                // Zero is rejected by resolve_jobs, the single validator.
                jobs_flag = Some(n.parse().map_err(|_| format!("bad worker count {n:?}"))?);
            }
            "--sim-threads" => {
                let n = it.next().ok_or("--sim-threads needs a thread count")?;
                let n: usize = n.parse().map_err(|_| format!("bad engine thread count {n:?}"))?;
                if n == 0 {
                    return Err("--sim-threads must be at least 1".into());
                }
                sim_threads_flag = Some(n);
            }
            "--concurrency" => {
                concurrency = Some(match it.next().map(String::as_str) {
                    Some("serial") => Concurrency::Serial,
                    Some("branch") => Concurrency::Branch,
                    Some("stream") => Concurrency::Stream,
                    Some("auto") => Concurrency::Auto,
                    _ => {
                        return Err("--concurrency needs \"serial\", \"branch\", \"stream\" \
                             or \"auto\""
                            .into())
                    }
                });
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}").into()),
            path => {
                if manifest_path.replace(path).is_some() {
                    return Err("exactly one manifest path expected".into());
                }
            }
        }
    }
    let path = manifest_path.ok_or(
        "usage: mondrian run <manifest> [--out <path>] [--quiet] \
         [--concurrency serial|branch|stream|auto] [--jobs N] [--sim-threads N] \
         [--timings] [--trace <path>] [--progress jsonl] [--junit <path>] \
         [--cache-dir <path>] [--no-cache]",
    )?;
    let mut manifest = load_manifest(path)?;
    if let Some(c) = concurrency {
        manifest.concurrency = c;
    }
    if sim_threads_flag.is_some() {
        manifest.sim_threads = sim_threads_flag;
    }
    let jobs = resolve_jobs(jobs_flag, manifest.jobs)?;

    if !quiet {
        println!(
            "campaign {:?}: {} stages on {} system(s), {} run(s), {} schedule, {} job(s)\n",
            manifest.name,
            manifest.stages.len(),
            manifest.systems.len(),
            manifest.runs().len(),
            manifest.concurrency.name(),
            jobs,
        );
    }
    // Tracing replays stage events from live reports, so warm full-run
    // hits (which skip simulation entirely) would leave empty lanes —
    // the trace path runs cold instead of lying about the timeline.
    let store = if no_cache || trace_path.is_some() {
        None
    } else if let Some(root) = resolve_root(cache_dir.as_deref()) {
        match Store::open(&root, &store_salt()) {
            Ok(store) => Some(Arc::new(store)),
            Err(e) => {
                eprintln!("warning: persistent cache disabled: {}: {e}", root.display());
                None
            }
        }
    } else {
        None
    };
    let sink: &dyn ProgressSink = if progress_jsonl { &JsonlSink } else { &() };
    let campaign = run_campaign_store(&manifest, jobs, store, sink, |run| {
        if !quiet {
            println!("{}", run_line(run));
        }
    });
    if !quiet {
        println!();
        // Per-stage detail of the first completed run as a worked example.
        if let Some(report) = campaign.runs.iter().find_map(|r| r.report.as_ref()) {
            println!("{}", report.summary_table());
            if manifest.concurrency != Concurrency::Serial {
                println!("{}", report.schedule_table());
            }
        }
    }
    // Graceful degradation: the artifact (and the JUnit report) is
    // written even when the campaign tripped a limit or failed — a
    // valid, byte-deterministic partial result — and only then does the
    // process exit with the campaign's standardized code.
    let json = campaign.to_json_with(timings);
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let completed = campaign.runs.iter().filter(|run| run.report.is_some()).count();
    println!(
        "wrote {out_path} ({} runs, {})",
        campaign.runs.len(),
        if completed < campaign.runs.len() {
            format!("{completed} completed")
        } else if campaign.verified() {
            "all verified".to_string()
        } else {
            "VERIFICATION FAILURES".to_string()
        },
    );
    if let Some(junit_out) = junit_path {
        std::fs::write(&junit_out, junit_xml(&campaign))
            .map_err(|e| format!("cannot write {junit_out}: {e}"))?;
        println!("wrote {junit_out} (JUnit XML, simulated-seconds times)");
    }
    if let Some(trace_out) = trace_path {
        // Replayed from the deterministic reports after the fact, so the
        // trace — like the artifact — is byte-identical for every --jobs
        // value and costs nothing unless requested. Skipped runs have no
        // report and therefore no process lane.
        let mut tracer = Tracer::new();
        for (pid, run) in campaign.runs.iter().enumerate() {
            if let Some(report) = &run.report {
                trace_run(&mut tracer, pid as u64, &run.spec.id(), report);
            }
        }
        std::fs::write(&trace_out, tracer.export())
            .map_err(|e| format!("cannot write {trace_out}: {e}"))?;
        println!("wrote {trace_out} (simulated-timeline trace, 1 µs = 1 simulated ps)");
    }
    let exit = campaign.exit();
    if exit.reason != ExitReason::Ok {
        eprintln!("campaign exit: {} ({})", exit.reason.as_str(), exit.detail);
    }
    Ok(exit.reason.code())
}

fn cmd_profile(args: &[String]) -> Result<u8, CliError> {
    let [path] = args else {
        return Err("usage: mondrian profile <result.json>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    print!("{}", profile(&text)?);
    Ok(0)
}

fn cmd_bench(args: &[String]) -> Result<u8, CliError> {
    let mut manifest_path: Option<&str> = None;
    let mut out_path = "BENCH_sweep.json".to_string();
    let mut history_path: Option<String> = Some("BENCH_history.jsonl".to_string());
    let mut jobs_list: Vec<usize> = vec![1, 2, 4];
    let mut sim_threads_list: Vec<usize> = vec![1, 2, 4];
    let mut engine = false;
    let mut cache = false;
    let mut repeat = 1usize;
    let parse_list = |flag: &str, list: &str| -> Result<Vec<usize>, String> {
        let out: Vec<usize> = list
            .split(',')
            .map(|v| match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("bad value {v:?} in {flag}")),
            })
            .collect::<Result<_, _>>()?;
        if out.is_empty() {
            return Err(format!("{flag} is empty"));
        }
        Ok(out)
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_path = it.next().ok_or("--out needs a path")?.clone();
            }
            "--history" => {
                // "none" disables the append (e.g. throwaway CI runs).
                let path = it.next().ok_or("--history needs a path (or \"none\")")?.clone();
                history_path = if path == "none" { None } else { Some(path) };
            }
            "--engine" => engine = true,
            "--cache" => cache = true,
            "--jobs-list" => {
                let list = it.next().ok_or("--jobs-list needs e.g. 1,2,4")?;
                jobs_list = parse_list("--jobs-list", list)?;
            }
            "--sim-threads-list" => {
                let list = it.next().ok_or("--sim-threads-list needs e.g. 1,2,4")?;
                sim_threads_list = parse_list("--sim-threads-list", list)?;
            }
            "--repeat" => {
                let n = it.next().ok_or("--repeat needs a count")?;
                repeat = match n.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err(format!("--repeat must be a positive count, got {n:?}").into()),
                };
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}").into()),
            path => {
                if manifest_path.replace(path).is_some() {
                    return Err("exactly one manifest path expected".into());
                }
            }
        }
    }
    let path = manifest_path.ok_or(
        "usage: mondrian bench <manifest> [--out <path>] [--history <path>|none] \
         [--jobs-list 1,2,4] [--repeat N] [--engine] [--sim-threads-list 1,2,4] \
         [--cache]",
    )?;
    if engine && cache {
        return Err("--engine and --cache are mutually exclusive".into());
    }
    let manifest = load_manifest(path)?;
    let (summary, json, history_line, ok) = if cache {
        let report = bench_cache(&manifest, repeat);
        let line = report.history_line(&current_commit());
        (report.human_summary(), report.to_json(), line, report.ok())
    } else if engine {
        let report = bench_engine(&manifest, &sim_threads_list, &jobs_list, repeat);
        let line = report.history_line(&current_commit());
        (report.human_summary(), report.to_json(), line, report.ok())
    } else {
        let report = bench(&manifest, &jobs_list, repeat);
        let line = report.history_line(&current_commit());
        (report.human_summary(), report.to_json(), line, report.ok())
    };
    print!("{summary}");
    std::fs::write(&out_path, json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    if let Some(history) = history_path {
        // The sweep file is a snapshot; the history file accumulates one
        // line per bench run, so trends survive across commits.
        use std::io::Write;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history)
            .and_then(|mut f| writeln!(f, "{history_line}"))
            .map_err(|e| format!("cannot append to {history}: {e}"))?;
        println!("appended {history}");
    }
    // A cross-worker artifact mismatch is a determinism bug, not a
    // campaign failure mode: internal_error.
    Ok(if ok { 0 } else { ExitReason::InternalError.code() })
}

/// The commit the benchmark ran on: `GITHUB_SHA` in CI, the local git
/// HEAD otherwise, `"unknown"` when neither resolves.
fn current_commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn cmd_cache(args: &[String]) -> Result<u8, CliError> {
    let mut action: Option<&str> = None;
    let mut cache_dir: Option<String> = None;
    let mut max_bytes: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?.clone());
            }
            "--max-bytes" => {
                let n = it.next().ok_or("--max-bytes needs a byte count")?;
                max_bytes = Some(n.parse().map_err(|_| format!("bad byte count {n:?}"))?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}").into()),
            verb => {
                if action.replace(verb).is_some() {
                    return Err("exactly one cache action expected".into());
                }
            }
        }
    }
    const CACHE_USAGE: &str =
        "usage: mondrian cache <stats|clear|prune --max-bytes N> [--cache-dir <path>]";
    let action = action.ok_or(CACHE_USAGE)?;
    let root = resolve_root(cache_dir.as_deref())
        .ok_or("no cache root: pass --cache-dir, or set MONDRIAN_CACHE or HOME")?;
    let open = || {
        Store::open(&root, &store_salt())
            .map_err(|e| format!("cannot open store under {}: {e}", root.display()))
    };
    match action {
        "stats" => {
            let store = open()?;
            let stats = store.stats().map_err(|e| format!("cannot walk store: {e}"))?;
            println!("store {}", store.dir().display());
            for (kind, entries, bytes) in &stats.kinds {
                println!("  {kind:>5}: {entries:>6} entries, {bytes:>12} B");
            }
            println!("  total: {:>6} entries, {:>12} B", stats.total_entries, stats.total_bytes);
        }
        "clear" => {
            // Clear every versioned store under the root — including ones
            // written by older engine fingerprints this binary can no
            // longer open — but nothing else, in case the root is shared.
            let mut removed = 0u64;
            if let Ok(entries) = std::fs::read_dir(&root) {
                for entry in entries.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if is_versioned_store_dir(&name) {
                        std::fs::remove_dir_all(entry.path())
                            .map_err(|e| format!("cannot remove {name}: {e}"))?;
                        removed += 1;
                    }
                }
            }
            println!("cleared {removed} store(s) under {}", root.display());
        }
        "prune" => {
            let max_bytes = max_bytes.ok_or("prune needs --max-bytes <N>")?;
            let store = open()?;
            let report = store.prune(max_bytes).map_err(|e| format!("cannot prune store: {e}"))?;
            println!(
                "pruned {}: examined {}, evicted {} ({} B freed), {} entries ({} B) remain",
                store.dir().display(),
                report.examined,
                report.evicted,
                report.freed_bytes,
                report.remaining_entries,
                report.remaining_bytes,
            );
        }
        other => return Err(format!("unknown cache action {other:?}\n\n{CACHE_USAGE}").into()),
    }
    Ok(0)
}

/// Whether a directory name is one of the store's versioned layouts
/// (`v<digits>-<16 hex>`), from any format version or engine fingerprint.
fn is_versioned_store_dir(name: &str) -> bool {
    let Some(rest) = name.strip_prefix('v') else {
        return false;
    };
    let Some((version, hash)) = rest.split_once('-') else {
        return false;
    };
    !version.is_empty()
        && version.bytes().all(|b| b.is_ascii_digit())
        && hash.len() == 16
        && hash.bytes().all(|b| b.is_ascii_hexdigit())
}

fn cmd_explain(args: &[String]) -> Result<u8, CliError> {
    let (path, artifact) = match args {
        [path] => (path, None),
        [path, artifact] => (path, Some(artifact)),
        _ => return Err("usage: mondrian explain <manifest> [result.json]".into()),
    };
    let manifest = load_manifest(path)?;
    println!("campaign {:?}", manifest.name);
    println!(
        "  topology: {:?}, key_dist: {:?}, key_bound: {:?}, concurrency: {}",
        manifest
            .topologies
            .iter()
            .map(|&t| if t { "tiny (1 HMC x 4 vaults)" } else { "scaled (4 HMC x 16 vaults)" })
            .collect::<Vec<_>>(),
        manifest.dist,
        manifest.key_bound,
        manifest.concurrency.name(),
    );
    println!("  systems: {:?}", manifest.systems.iter().map(SystemKind::name).collect::<Vec<_>>());
    println!("  tuples_per_vault: {:?}", manifest.tuples_per_vault);
    println!("  seeds: {:?}", manifest.seeds);
    if manifest.thetas != vec![None] {
        println!("  zipf_theta: {:?}", manifest.thetas.iter().flatten().collect::<Vec<_>>());
    }
    if manifest.underprovision != vec![None] {
        println!(
            "  underprovision: {:?}",
            manifest.underprovision.iter().flatten().collect::<Vec<_>>()
        );
    }

    // The plan DAG as branch waves: concurrent branch groups indented
    // under their wave, with the input/build edges spelled out.
    let pipeline = manifest.pipeline();
    let dag = pipeline.dag();
    println!("\nplan DAG (branch waves; branches of one wave may run concurrently):");
    for (w, wave) in dag.waves.iter().enumerate() {
        println!("  wave {w}:");
        for &b in wave {
            println!("    branch {b}:");
            for &i in &dag.branches[b] {
                let stage = &pipeline.stages()[i];
                // Every incoming edge is labeled: multi-input stages
                // (union, cogroup) list each feeder in edge order.
                let described: Vec<String> =
                    stage.inputs.iter().map(|&edge| describe_input(edge, i)).collect();
                let mut edges = if described.len() == 1 {
                    format!("input: {}", described[0])
                } else {
                    format!("inputs: {}", described.join(" + "))
                };
                if let mondrian_pipeline::StageSpec::Join { build } = stage.spec {
                    let build = match build {
                        mondrian_pipeline::BuildSide::Dimension => "derived dimension".to_string(),
                        mondrian_pipeline::BuildSide::Stage(j) => format!("stage {j}"),
                    };
                    edges.push_str(&format!(", build: {build}"));
                }
                println!(
                    "      {i}: {:<18} -> {:?} -> {} operator  ({edges})",
                    stage.name(),
                    stage.spec.spark_op(),
                    stage.basic_operator(),
                );
            }
        }
    }

    // Stream-fusable producer→consumer edges: which input edges the
    // stream scheduler would pipeline through a bounded chunk channel
    // (charged only under concurrency = "stream", per-pair fallback).
    let fused = dag.fused_pairs(pipeline.stages());
    if !fused.is_empty() {
        println!(
            "\nstream-fusable edges (overlapped when concurrency = \"stream\"; \
             per-pair fallback):"
        );
        for (p, c) in fused {
            println!(
                "  {p} -> {c}: {} streams into {}'s partition phase",
                pipeline.stages()[p].name(),
                pipeline.stages()[c].name(),
            );
        }
    }

    // The adaptive planner's cost-model view of the first sweep point:
    // predicted per-stage makespans per system (what `concurrency =
    // "auto"` feeds its schedule proposals), joined with the measured
    // runtimes when a result artifact is passed alongside the manifest.
    let actuals = match artifact {
        Some(p) => {
            let text = fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            Some(parse_json(&text).map_err(|e| format!("{p}: {e}"))?)
        }
        None => None,
    };
    let tiny = *manifest.topologies.first().unwrap_or(&true);
    let tpv = *manifest.tuples_per_vault.first().unwrap_or(&256);
    println!(
        "\nplanner predictions (first sweep point; proposals charged only when \
         concurrency = \"auto\" measures them faster):"
    );
    for &system in &manifest.systems {
        let mut sys = if tiny { SystemConfig::tiny(system) } else { SystemConfig::scaled(system) };
        sys.tuples_per_vault = tpv;
        let source_rows = tpv * sys.total_vaults() as usize;
        let key_bound = manifest.key_bound.unwrap_or_else(|| (source_rows as u64 / 4).max(1));
        let shapes = plan::estimate_shapes(pipeline.stages(), source_rows, key_bound);
        let actual =
            actuals.as_ref().and_then(|doc| artifact_stage_actuals(doc, system.name(), tiny, tpv));
        println!("  {}:", system.name());
        let mut serial_sum: u64 = 0;
        for (i, (stage, shape)) in pipeline.stages().iter().zip(&shapes).enumerate() {
            let predicted = plan::predict_stage(stage, shape, &sys);
            serial_sum += predicted;
            let predicted_us = predicted as f64 / 1e6;
            match actual.as_ref().and_then(|a| a.get(i)) {
                Some(&actual_ps) => {
                    let actual_us = actual_ps as f64 / 1e6;
                    let delta =
                        if actual_ps > 0 { (predicted_us / actual_us - 1.0) * 100.0 } else { 0.0 };
                    println!(
                        "    {i}: {:<18} predicted {predicted_us:>10.3} µs, \
                         actual {actual_us:>10.3} µs ({delta:+.1}%)",
                        stage.name(),
                    );
                }
                None => {
                    println!("    {i}: {:<18} predicted {predicted_us:>10.3} µs", stage.name());
                }
            }
        }
        println!("    predicted serial sum: {:.3} µs", serial_sum as f64 / 1e6);
    }

    let runs = manifest.runs();
    println!("\nsweep cross product ({} runs):", runs.len());
    for run in &runs {
        println!("  {}", run.label());
    }
    Ok(0)
}

/// The per-stage measured runtimes of the artifact run matching
/// `(system, topology, tuples_per_vault)` — the explain command's
/// "actual" column. `None` when no run matches (different sweep, a
/// skipped run, or an older schema).
fn artifact_stage_actuals(doc: &Value, system: &str, tiny: bool, tpv: usize) -> Option<Vec<i64>> {
    let topology = if tiny { "tiny" } else { "scaled" };
    let run = doc.get("runs")?.as_array()?.iter().find(|run| {
        run.get("system").and_then(|v| v.as_str()) == Some(system)
            && run.get("topology").and_then(|v| v.as_str()) == Some(topology)
            && run.get("tuples_per_vault").and_then(Value::as_int) == Some(tpv as i64)
            && run.get("skipped").is_none()
    })?;
    run.get("stages")?
        .as_array()?
        .iter()
        .map(|s| s.get("runtime_ps").and_then(Value::as_int))
        .collect()
}

fn describe_input(input: StageInput, i: usize) -> String {
    match input {
        StageInput::Prev if i == 0 => "source".to_string(),
        StageInput::Prev => format!("stage {} (prev)", i - 1),
        StageInput::Source => "source".to_string(),
        StageInput::Stage(j) => format!("stage {j}"),
    }
}

/// `mondrian diff` exit codes, disjoint from the campaign taxonomy so
/// CI gates can distinguish "regressed" from "broken": 0 compared (and
/// within any `--fail-on-regression` gate), 1 error, 20 gate exceeded,
/// 21 no matched runs.
const DIFF_EXIT_REGRESSION: u8 = 20;
const DIFF_EXIT_NO_MATCHES: u8 = 21;

fn cmd_diff(args: &[String]) -> Result<u8, CliError> {
    let mut paths: Vec<&str> = Vec::new();
    let mut fail_on: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fail-on-regression" => {
                let pct = it.next().ok_or("--fail-on-regression needs a percentage")?;
                let pct: f64 = pct.parse().map_err(|_| format!("bad percentage {pct:?}"))?;
                fail_on = Some(pct);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}").into()),
            path => paths.push(path),
        }
    }
    let [a, b] = paths[..] else {
        return Err(
            "usage: mondrian diff <a/result.json> <b/result.json> [--fail-on-regression <pct>]"
                .into(),
        );
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let report = diff(&read(a)?, &read(b)?)?;
    print!("{}", report.render_with_host(host_cores()));
    if report.rows.is_empty() {
        eprintln!("no matched runs between the two artifacts");
        return Ok(DIFF_EXIT_NO_MATCHES);
    }
    if let Some(pct) = fail_on {
        let worst = report.max_regression_pct();
        if worst > pct {
            eprintln!("regression gate failed: {worst:+.2}% > {pct}% allowed");
            return Ok(DIFF_EXIT_REGRESSION);
        }
    }
    Ok(0)
}

fn cmd_list_systems() -> Result<u8, CliError> {
    for kind in SystemKind::ALL {
        println!("{}", SystemConfig::scaled(kind).table3_sheet());
        println!();
    }
    Ok(0)
}
