//! The example manifests shipped under `examples/manifests/` must keep
//! parsing and verifying: they are the CLI's documented entry points.

use mondrian_cli::campaign::{run_campaign, CampaignRun};
use mondrian_cli::manifest::{Format, Manifest};
use mondrian_pipeline::PipelineReport;

/// Every example campaign completes, so each run carries a report.
fn rep(run: &CampaignRun) -> &PipelineReport {
    run.report.as_ref().expect("example runs complete")
}

fn example(name: &str) -> String {
    let path = format!("{}/../../examples/manifests/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn spark_pipeline_toml_parses_to_the_documented_campaign() {
    let m = Manifest::parse(&example("spark_pipeline.toml"), Format::Toml).unwrap();
    assert_eq!(m.name, "spark-pipeline");
    assert_eq!(m.systems.len(), 7, "runs on every evaluated system");
    assert!(m.stages.len() >= 3, "the acceptance pipeline has at least 3 stages");
    assert!(m.tiny);
    // Scan, Group-by and Sort all participate.
    let ops: Vec<_> = m.stages.iter().map(|s| s.basic_operator()).collect();
    assert_eq!(ops.len(), 3);
    assert_eq!(m.runs().len(), 7);
}

#[test]
fn join_campaign_json_runs_verified_and_deterministic() {
    let m = Manifest::parse(&example("join_campaign.json"), Format::Json).unwrap();
    assert_eq!(m.runs().len(), 4, "2 systems x 2 swept seeds");
    let a = run_campaign(&m, |_| {});
    assert!(a.verified(), "example campaign must verify");
    let b = run_campaign(&m, |_| {});
    assert_eq!(a.to_json(), b.to_json(), "artifact must be byte-identical per seed");
}

/// The opened operator layer at the manifest level: `cogroup_union.toml`
/// exercises union, cogroup and flat_map as declarative stages with
/// multi-input `input = [...]` edges, runs verified on the four
/// representative systems, and stays byte-identical between the serial
/// and branch schedules.
#[test]
fn cogroup_union_manifest_runs_all_new_stage_kinds() {
    let m = Manifest::parse(&example("cogroup_union.toml"), Format::Toml).unwrap();
    assert_eq!(m.systems.len(), 4, "both algorithm families, both partitioning mechanisms");
    assert_eq!(m.concurrency, mondrian_pipeline::Concurrency::Branch);
    let names: Vec<&str> = m.stages.iter().map(|s| s.name()).collect();
    for required in ["union", "cogroup", "flat_map"] {
        assert!(names.contains(&required), "manifest must exercise {required}");
    }
    assert_eq!(m.stages[3].inputs.len(), 2, "union reads two explicit edges");

    let branch = run_campaign(&m, |_| {});
    assert!(branch.verified(), "cogroup_union campaign must verify on every system");
    let mut serial = m.clone();
    serial.concurrency = mondrian_pipeline::Concurrency::Serial;
    let s = run_campaign(&serial, |_| {});
    for (br, sr) in branch.runs.iter().zip(&s.runs) {
        assert_eq!(rep(br).output, rep(sr).output);
        for (bs, ss) in rep(br).stages.iter().zip(&rep(sr).stages) {
            assert_eq!(bs.output_digest, ss.output_digest, "{} diverged", bs.spec);
        }
        assert!(rep(br).makespan_ps() <= rep(sr).makespan_ps());
    }
}

/// The intra-stage pipelining acceptance scenario at the manifest
/// level: `stream_chain.toml` is a linear chain (branch tenancy cannot
/// help), yet `concurrency = "stream"` must beat both `"serial"` and
/// `"branch"` strictly on CPU while every run's stage outputs stay
/// byte-identical across all three modes.
#[test]
fn stream_chain_campaign_beats_branch_with_identical_outputs() {
    let stream = Manifest::parse(&example("stream_chain.toml"), Format::Toml).unwrap();
    assert_eq!(stream.concurrency, mondrian_pipeline::Concurrency::Stream);
    let mut branch = stream.clone();
    branch.concurrency = mondrian_pipeline::Concurrency::Branch;
    let mut serial = stream.clone();
    serial.concurrency = mondrian_pipeline::Concurrency::Serial;

    let st = run_campaign(&stream, |_| {});
    let br = run_campaign(&branch, |_| {});
    let se = run_campaign(&serial, |_| {});
    assert!(st.verified() && br.verified() && se.verified());

    let mut strictly_faster = Vec::new();
    for ((sr, br), ser) in st.runs.iter().zip(&br.runs).zip(&se.runs) {
        for (ss, es) in rep(sr).stages.iter().zip(&rep(ser).stages) {
            assert_eq!(
                ss.output_digest,
                es.output_digest,
                "{}: stage {} diverged under streaming",
                sr.spec.system.name(),
                ss.spec
            );
        }
        assert_eq!(rep(sr).output, rep(ser).output);
        // A linear chain: branch ≡ serial, and stream never slower.
        assert_eq!(rep(br).makespan_ps(), rep(ser).makespan_ps());
        assert!(rep(sr).makespan_ps() <= rep(br).makespan_ps());
        if rep(sr).makespan_ps() < rep(br).makespan_ps() {
            assert!(rep(sr).schedule.any_streamed());
            strictly_faster.push(sr.spec.system);
        }
    }
    assert!(
        strictly_faster.contains(&mondrian_core::SystemKind::Cpu),
        "streaming must beat the branch schedule on CPU; got {strictly_faster:?}"
    );
}

/// The acceptance scenario at the manifest level: the two-branch DAG
/// campaign run with `concurrency = "branch"` must report a strictly
/// smaller makespan than `"serial"` on at least one system, while every
/// run's stage outputs stay byte-identical between the two modes.
#[test]
fn branch_join_campaign_beats_serial_with_identical_outputs() {
    let branch = Manifest::parse(&example("branch_join.toml"), Format::Toml).unwrap();
    assert_eq!(branch.concurrency, mondrian_pipeline::Concurrency::Branch);
    let mut serial = branch.clone();
    serial.concurrency = mondrian_pipeline::Concurrency::Serial;

    let b = run_campaign(&branch, |_| {});
    let s = run_campaign(&serial, |_| {});
    assert!(b.verified() && s.verified());
    assert_eq!(b.runs.len(), s.runs.len());

    let mut strictly_faster = 0;
    for (br, sr) in b.runs.iter().zip(&s.runs) {
        assert_eq!(br.spec, sr.spec);
        // Stage outputs byte-identical between the two modes.
        for (bs, ss) in rep(br).stages.iter().zip(&rep(sr).stages) {
            assert_eq!(
                bs.output_digest,
                ss.output_digest,
                "{}: stage {} output diverged between schedules",
                br.spec.system.name(),
                bs.spec
            );
        }
        assert_eq!(rep(br).output, rep(sr).output);
        assert!(rep(br).makespan_ps() <= rep(sr).makespan_ps());
        if rep(br).makespan_ps() < rep(sr).makespan_ps() {
            strictly_faster += 1;
        }
    }
    assert!(strictly_faster > 0, "branch schedule must beat serial on at least one system");
}
