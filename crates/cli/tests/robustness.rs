//! The robustness layer, in-process: cooperative limits truncate
//! campaigns at deterministic checkpoints, injected faults fail only
//! their own sweep point (with one bounded retry), assertions evaluate
//! at assembly time — and every degraded artifact stays byte-identical
//! for every `--jobs` / `--sim-threads` value.

use mondrian_cli::campaign::{run_campaign, run_campaign_jobs, ExitReason};
use mondrian_cli::junit::junit_xml;
use mondrian_cli::manifest::{Format, Manifest};
use mondrian_core::fault::FaultPlan;
use proptest::prelude::*;

fn example(name: &str) -> String {
    let path = format!("{}/../../examples/manifests/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// A three-seed sweep on one system: three unique sweep points.
fn sweep_manifest(extra: &str) -> Manifest {
    let text = format!(
        r#"
        [campaign]
        name = "robustness"
        systems = ["mondrian"]
        tuples_per_vault = 32

        [sweep]
        seeds = [1, 2, 3]

        [[stage]]
        op = "filter"

        [[stage]]
        op = "count_by_key"
        {extra}
    "#
    );
    Manifest::parse(&text, Format::Toml).unwrap()
}

#[test]
fn max_events_truncates_at_the_same_point_for_every_worker_count() {
    let manifest = sweep_manifest("[limits]\nmax_events = 200\n");
    let baseline = run_campaign_jobs(&manifest, 1, |_| {});
    assert_eq!(baseline.exit().reason, ExitReason::LimitEvents);
    assert!(baseline.exit().detail.contains("event budget"), "{}", baseline.exit().detail);
    // The first run trips mid-simulation; every later sweep point is a
    // truncation skip. The artifact is still valid JSON.
    assert!(baseline.runs[0].report.is_none());
    assert!(baseline.runs.iter().skip(1).all(|r| {
        r.exit.reason == ExitReason::LimitEvents && r.exit.detail.starts_with("campaign truncated")
    }));
    crate::parse_artifact(&baseline.to_json());
    // Byte-identical for every jobs x sim_threads combination.
    for jobs in [2, 4] {
        assert_eq!(baseline.to_json(), run_campaign_jobs(&manifest, jobs, |_| {}).to_json());
    }
    for sim_threads in [2, 4] {
        let mut threaded = manifest.clone();
        threaded.sim_threads = Some(sim_threads);
        assert_eq!(
            baseline.to_json(),
            run_campaign_jobs(&threaded, 4, |_| {}).to_json(),
            "sim_threads = {sim_threads} must not move the truncation point"
        );
    }
}

#[test]
fn wall_time_zero_truncates_everything_identically() {
    let manifest = sweep_manifest("[limits]\nwall_time_ms = 0\n");
    let a = run_campaign_jobs(&manifest, 1, |_| {});
    let b = run_campaign_jobs(&manifest, 4, |_| {});
    assert_eq!(a.exit().reason, ExitReason::LimitWallTime);
    assert!(a.runs.iter().all(|r| r.report.is_none()));
    assert_eq!(a.to_json(), b.to_json(), "an expired deadline skips every run, deterministically");
}

#[test]
fn sweep_point_cap_completes_the_prefix_and_skips_the_rest() {
    let manifest = sweep_manifest("[limits]\nmax_sweep_points = 1\n");
    let campaign = run_campaign(&manifest, |_| {});
    assert_eq!(campaign.exit().reason, ExitReason::LimitSweepPoints);
    assert!(campaign.runs[0].report.as_ref().is_some_and(|r| r.verified()));
    assert_eq!(campaign.runs[0].exit.reason, ExitReason::Ok);
    assert!(campaign.runs[1].report.is_none());
    assert!(campaign.runs[2].report.is_none());
}

#[test]
fn memory_estimate_cap_skips_before_executing() {
    let manifest = sweep_manifest("[limits]\nmax_memory_bytes = 64\n");
    let campaign = run_campaign(&manifest, |_| {});
    assert_eq!(campaign.exit().reason, ExitReason::LimitMemory);
    assert!(campaign.runs.iter().all(|r| r.report.is_none()));
    assert!(campaign.exit().detail.contains("estimated peak relation footprint"));
    assert_eq!(campaign.sim_wall_ms(), 0.0, "nothing simulated");
    // A generous cap changes nothing.
    let roomy = sweep_manifest("[limits]\nmax_memory_bytes = 1073741824\n");
    assert_eq!(run_campaign(&roomy, |_| {}).exit().reason, ExitReason::Ok);
}

#[test]
fn injected_panic_fails_only_its_sweep_point() {
    let mut manifest = sweep_manifest("");
    manifest.fault = Some(FaultPlan { run: 1, panic_at_event: Some(10), ..FaultPlan::default() });
    let campaign = run_campaign(&manifest, |_| {});
    assert_eq!(campaign.exit().reason, ExitReason::WorkerPanic);
    assert_eq!(campaign.runs[1].exit.reason, ExitReason::WorkerPanic);
    assert_eq!(campaign.runs[1].exit.detail, "injected panic at event 10");
    assert!(campaign.runs[1].retried, "the bounded retry ran (and re-tripped)");
    assert!(campaign.runs[1].report.is_none());
    // The rest of the campaign completes and verifies: no truncation.
    for clean in [0, 2] {
        assert_eq!(campaign.runs[clean].exit.reason, ExitReason::Ok);
        assert!(campaign.runs[clean].report.as_ref().is_some_and(|r| r.verified()));
    }
    // Degraded artifacts stay byte-identical across worker counts.
    assert_eq!(campaign.to_json(), run_campaign_jobs(&manifest, 4, |_| {}).to_json());
}

#[test]
fn transient_fault_is_absorbed_by_the_bounded_retry() {
    let mut manifest = sweep_manifest("");
    manifest.fault = Some(FaultPlan {
        run: 0,
        panic_at_event: Some(10),
        times: Some(1),
        ..FaultPlan::default()
    });
    let campaign = run_campaign(&manifest, |_| {});
    assert_eq!(campaign.exit().reason, ExitReason::Ok, "one firing, one retry: absorbed");
    assert!(campaign.runs[0].retried);
    assert!(campaign.runs[0].report.as_ref().is_some_and(|r| r.verified()));
    assert!(!campaign.runs[1].retried);
}

#[test]
fn faulted_run_is_excluded_from_memoization_both_ways() {
    // An underprovision sweep on cpu normally memoizes the duplicate;
    // with a fault on run 0 the duplicate must re-simulate cleanly
    // instead of inheriting the degraded result.
    let text = r#"
        [campaign]
        name = "memo-fault"
        systems = ["cpu"]
        tuples_per_vault = 32

        [sweep]
        underprovision = [0.5, 1.0]

        [faults]
        run = 0
        panic_at_event = 10

        [[stage]]
        op = "filter"

        [[stage]]
        op = "count_by_key"
    "#;
    let manifest = Manifest::parse(text, Format::Toml).unwrap();
    let campaign = run_campaign(&manifest, |_| {});
    assert_eq!(campaign.memo_hits, 0, "faulted run neither serves nor takes memo hits");
    assert_eq!(campaign.runs[0].exit.reason, ExitReason::WorkerPanic);
    assert!(!campaign.runs[1].memoized);
    assert!(campaign.runs[1].report.as_ref().is_some_and(|r| r.verified()));
    // Without the fault the same sweep memoizes.
    let mut clean = manifest.clone();
    clean.fault = None;
    assert_eq!(run_campaign(&clean, |_| {}).memo_hits, 1);
}

#[test]
fn vault_poll_fault_is_identical_for_serial_and_pooled_engines() {
    let mut manifest = sweep_manifest("");
    manifest.fault = Some(FaultPlan { run: 0, panic_in_vault_poll: true, ..FaultPlan::default() });
    let serial = run_campaign(&manifest, |_| {});
    let mut pooled = manifest.clone();
    pooled.sim_threads = Some(4);
    let threaded = run_campaign(&pooled, |_| {});
    for campaign in [&serial, &threaded] {
        assert_eq!(campaign.runs[0].exit.reason, ExitReason::WorkerPanic);
        assert_eq!(campaign.runs[0].exit.detail, "injected vault-poll fault");
    }
    assert_eq!(serial.to_json(), threaded.to_json());
}

#[test]
fn digest_corruption_is_caught_by_stage_digest_assertions() {
    // Digests vary with the seed, so assert on a single-run campaign.
    let single = |extra: &str| {
        let text = format!(
            r#"
            [campaign]
            name = "digests"
            systems = ["mondrian"]
            tuples_per_vault = 32

            [[stage]]
            op = "filter"

            [[stage]]
            op = "count_by_key"
            {extra}
        "#
        );
        Manifest::parse(&text, Format::Toml).unwrap()
    };
    // First, learn the true digests from a clean run.
    let clean = run_campaign(&single(""), |_| {});
    let digests: Vec<String> = clean.runs[0]
        .report
        .as_ref()
        .unwrap()
        .stages
        .iter()
        .map(|s| format!("\"{:016x}\"", s.output_digest))
        .collect();
    let assertions = format!("[assertions]\nstage_digests = [{}]\n", digests.join(", "));
    // Asserted against a clean campaign they hold...
    let held = run_campaign(&single(&assertions), |_| {});
    assert_eq!(held.exit().reason, ExitReason::Ok);
    // ...and an injected digest corruption trips them.
    let mut corrupted = single(&assertions);
    corrupted.fault =
        Some(FaultPlan { run: 0, corrupt_digest_stage: Some(1), ..FaultPlan::default() });
    let campaign = run_campaign(&corrupted, |_| {});
    assert_eq!(campaign.exit().reason, ExitReason::AssertionFailed);
    assert!(campaign.exit().detail.contains("stage 1 digest"));
    assert!(campaign.runs[0].report.is_some(), "the run completed; only the assertion failed");
}

#[test]
fn makespan_and_matches_serial_assertions_evaluate() {
    let tight = sweep_manifest("[assertions]\nmax_makespan_ps = 1\n");
    let campaign = run_campaign(&tight, |_| {});
    assert_eq!(campaign.exit().reason, ExitReason::AssertionFailed);
    assert!(campaign.exit().detail.contains("exceeds 1 ps"));
    // Every run completed — failed assertions degrade, they don't skip.
    assert!(campaign.runs.iter().all(|r| r.report.is_some()));
    let lax =
        sweep_manifest("[assertions]\nmax_makespan_ps = 10000000000\nmatches_serial = true\n");
    assert_eq!(run_campaign(&lax, |_| {}).exit().reason, ExitReason::Ok);
}

#[test]
fn junit_report_reflects_degraded_campaigns() {
    let mut manifest = sweep_manifest("");
    manifest.fault = Some(FaultPlan { run: 1, panic_at_event: Some(10), ..FaultPlan::default() });
    let campaign = run_campaign(&manifest, |_| {});
    let xml = junit_xml(&campaign);
    assert!(xml.contains("tests=\"3\" failures=\"1\" skipped=\"0\""));
    assert!(xml.contains("<failure message=\"worker_panic: injected panic at event 10\"/>"));
    let truncated = run_campaign(&sweep_manifest("[limits]\nmax_events = 200\n"), |_| {});
    let xml = junit_xml(&truncated);
    assert!(xml.contains("tests=\"3\" failures=\"0\" skipped=\"3\""));
}

/// Parses an artifact with the crate's own JSON parser, panicking if the
/// degraded output stopped being valid JSON.
fn parse_artifact(json: &str) {
    mondrian_cli::value::parse_json(json).expect("degraded artifact must stay valid JSON");
}

proptest! {
    /// Satellite acceptance: a `max_events`-tripped campaign on the
    /// shipped example manifests emits byte-identical partial artifacts
    /// across `--jobs` {1, 4} x `--sim-threads` {1, 4}.
    #[test]
    fn limit_tripped_examples_are_jobs_and_simthreads_invariant(case in (0usize..3, 1u64..400)) {
        let (pick, budget) = case;
        let name = ["branch_join.toml", "cogroup_union.toml", "stream_chain.toml"][pick];
        let text = format!("{}\n[limits]\nmax_events = {budget}\n", example(name));
        let manifest = Manifest::parse(&text, Format::Toml).unwrap();
        let mut artifacts = Vec::new();
        for jobs in [1usize, 4] {
            for sim_threads in [1usize, 4] {
                let mut m = manifest.clone();
                m.sim_threads = Some(sim_threads);
                let campaign = run_campaign_jobs(&m, jobs, |_| {});
                prop_assert_eq!(campaign.exit().reason, ExitReason::LimitEvents);
                artifacts.push(campaign.to_json());
            }
        }
        parse_artifact(&artifacts[0]);
        for other in &artifacts[1..] {
            prop_assert_eq!(&artifacts[0], other);
        }
    }
}
