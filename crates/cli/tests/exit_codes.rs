//! The process-level exit-code contract, asserted against the real
//! `mondrian` binary: every documented exit reason is reachable, maps to
//! its stable code, and a degraded campaign still writes a valid partial
//! `result.json` plus well-formed JUnit XML. No dead taxonomy.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn mondrian() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mondrian"));
    // A hermetic environment: tests control fault injection and worker
    // counts explicitly, never inherit them from the harness — and with
    // neither MONDRIAN_CACHE nor HOME set, the persistent store stays
    // off, so exit codes cannot depend on what earlier tests simulated.
    cmd.env_remove("MONDRIAN_FAULT");
    cmd.env_remove("MONDRIAN_JOBS");
    cmd.env_remove("MONDRIAN_CACHE");
    cmd.env_remove("HOME");
    cmd
}

fn code(output: &Output) -> i32 {
    output.status.code().expect("the binary must exit, not die on a signal")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("mondrian-exit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const CLEAN: &str = r#"
    [campaign]
    name = "exit-codes"
    systems = ["mondrian"]
    tuples_per_vault = 32

    [sweep]
    seeds = [1, 2]

    [[stage]]
    op = "filter"

    [[stage]]
    op = "count_by_key"
"#;

fn write_manifest(dir: &TempDir, name: &str, extra: &str) -> PathBuf {
    let path = dir.path(name);
    std::fs::write(&path, format!("{CLEAN}\n{extra}")).unwrap();
    path
}

/// Runs `mondrian run` on `CLEAN` + `extra`, returning the exit code and
/// the artifact path (which must exist and parse even when degraded).
fn run_campaign_binary(tag: &str, extra: &str, fault_env: Option<&str>) -> (i32, String) {
    let dir = TempDir::new(tag);
    let manifest = write_manifest(&dir, "m.toml", extra);
    let out = dir.path("result.json");
    let mut cmd = mondrian();
    cmd.args(["run", manifest.to_str().unwrap(), "--quiet", "--out", out.to_str().unwrap()]);
    if let Some(spec) = fault_env {
        cmd.env("MONDRIAN_FAULT", spec);
    }
    let output = cmd.output().unwrap();
    let artifact = std::fs::read_to_string(&out)
        .unwrap_or_else(|e| panic!("{tag}: degraded run must still write {}: {e}", out.display()));
    mondrian_cli::value::parse_json(&artifact)
        .unwrap_or_else(|e| panic!("{tag}: artifact must stay valid JSON: {e}"));
    (code(&output), artifact)
}

#[test]
fn clean_campaign_exits_zero() {
    let (exit, artifact) = run_campaign_binary("ok", "", None);
    assert_eq!(exit, 0);
    assert!(artifact.contains("\"schema_version\": 8"));
    assert!(artifact.contains("\"reason\": \"ok\""));
}

#[test]
fn missing_manifest_is_an_internal_error() {
    let output = mondrian().args(["run", "/nonexistent/manifest.toml"]).output().unwrap();
    assert_eq!(code(&output), 1);
}

#[test]
fn malformed_manifest_exits_invalid_manifest() {
    let dir = TempDir::new("invalid");
    let path = dir.path("bad.toml");
    std::fs::write(&path, "[campaign]\nname = \"x\"\nbogus_key = 1\n").unwrap();
    let output = mondrian().args(["run", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(code(&output), 2);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown key"), "stderr: {stderr}");
}

#[test]
fn malformed_fault_env_exits_invalid_manifest() {
    let dir = TempDir::new("badfault");
    let manifest = write_manifest(&dir, "m.toml", "");
    let output = mondrian()
        .args(["run", manifest.to_str().unwrap()])
        .env("MONDRIAN_FAULT", "run=0;warp_speed=9")
        .output()
        .unwrap();
    assert_eq!(code(&output), 2);
}

#[test]
fn failed_assertion_exits_three() {
    let (exit, artifact) =
        run_campaign_binary("assert", "[assertions]\nmax_makespan_ps = 1\n", None);
    assert_eq!(exit, 3);
    assert!(artifact.contains("\"reason\": \"assertion_failed\""));
}

#[test]
fn tripped_wall_time_exits_four() {
    let (exit, artifact) = run_campaign_binary("walltime", "[limits]\nwall_time_ms = 0\n", None);
    assert_eq!(exit, 4);
    assert!(artifact.contains("\"reason\": \"limit_wall_time\""));
    assert!(artifact.contains("\"skipped\": true"));
}

#[test]
fn tripped_event_budget_exits_five() {
    let (exit, artifact) = run_campaign_binary("events", "[limits]\nmax_events = 200\n", None);
    assert_eq!(exit, 5);
    assert!(artifact.contains("\"reason\": \"limit_events\""));
}

#[test]
fn tripped_memory_estimate_exits_six() {
    let (exit, artifact) = run_campaign_binary("memory", "[limits]\nmax_memory_bytes = 1\n", None);
    assert_eq!(exit, 6);
    assert!(artifact.contains("\"reason\": \"limit_memory\""));
}

#[test]
fn tripped_sweep_point_cap_exits_seven() {
    let (exit, artifact) =
        run_campaign_binary("sweepcap", "[limits]\nmax_sweep_points = 1\n", None);
    assert_eq!(exit, 7);
    assert!(artifact.contains("\"reason\": \"limit_sweep_points\""));
    // The first sweep point still completed in full.
    assert!(artifact.contains("\"reason\": \"ok\""));
}

#[test]
fn injected_worker_panic_exits_eight() {
    let (exit, artifact) = run_campaign_binary("panic", "", Some("run=1;panic_at_event=10"));
    assert_eq!(exit, 8);
    assert!(artifact.contains("\"reason\": \"worker_panic\""));
    assert!(artifact.contains("\"retried\": true"));
    // The other sweep point completed: faults stay contained.
    assert!(artifact.contains("\"reason\": \"ok\""));
}

#[test]
fn junit_report_is_written_even_for_degraded_campaigns() {
    let dir = TempDir::new("junit");
    let manifest = write_manifest(&dir, "m.toml", "[limits]\nmax_events = 200\n");
    let junit = dir.path("report.xml");
    let output = mondrian()
        .args([
            "run",
            manifest.to_str().unwrap(),
            "--quiet",
            "--out",
            dir.path("result.json").to_str().unwrap(),
            "--junit",
            junit.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(code(&output), 5);
    let xml = std::fs::read_to_string(&junit).unwrap();
    assert!(xml.starts_with("<?xml version=\"1.0\""));
    assert!(xml.contains("<testsuite "));
    assert!(xml.contains("<skipped message=\"limit_events:"));
    assert!(xml.ends_with("</testsuites>\n"));
}

fn artifact_for(dir: &TempDir, tag: &str, extra: &str) -> PathBuf {
    let manifest = write_manifest(dir, &format!("{tag}.toml"), extra);
    let out = dir.path(&format!("{tag}.json"));
    let output = mondrian()
        .args(["run", manifest.to_str().unwrap(), "--quiet", "--out", out.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(code(&output), 0, "{tag} must complete cleanly");
    out
}

fn diff(a: &Path, b: &Path, extra: &[&str]) -> Output {
    let mut cmd = mondrian();
    cmd.args(["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    cmd.args(extra);
    cmd.output().unwrap()
}

#[test]
fn diff_contract_zero_twenty_and_twenty_one() {
    let dir = TempDir::new("diff");
    let a = artifact_for(&dir, "a", "");
    // Identical campaigns: no regression.
    let b = artifact_for(&dir, "b", "");
    assert_eq!(code(&diff(&a, &b, &[])), 0);
    // Same sweep axes, heavier pipeline: makespans regress past 0%.
    let slower = artifact_for(
        &dir,
        "slower",
        "[[stage]]\nop = \"sort_by_key\"\n\n[[stage]]\nop = \"count_by_key\"\n",
    );
    assert_eq!(code(&diff(&a, &slower, &["--fail-on-regression", "0"])), 20);
    // Disjoint sweep axes: nothing to compare.
    let disjoint_manifest = CLEAN.replace("tuples_per_vault = 32", "tuples_per_vault = 64");
    let path = dir.path("disjoint.toml");
    std::fs::write(&path, disjoint_manifest).unwrap();
    let out = dir.path("disjoint.json");
    let output = mondrian()
        .args(["run", path.to_str().unwrap(), "--quiet", "--out", out.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(code(&output), 0);
    let no_match = diff(&a, &out, &[]);
    assert_eq!(code(&no_match), 21);
    let stderr = String::from_utf8_lossy(&no_match.stderr);
    assert!(stderr.contains("no matched runs"), "stderr: {stderr}");
}
