//! Determinism under parallelism: the campaign engine must produce the
//! exact same artifact — and the exact same memo decisions — for every
//! worker-thread count and any thread scheduling.
//!
//! Two angles:
//!
//! * the shipped `examples/manifests/branch_join.toml` campaign run at
//!   `--jobs 1` and `--jobs 8` must serialize byte-identically, and
//! * a property over generated sweeps with duplicated effective keys:
//!   every duplicate sweep point is served from the full-run memo
//!   regardless of scheduling order, so `memo_hits` and the per-run
//!   `memoized` flags match the serial run exactly.

use mondrian_cli::campaign::{run_campaign, run_campaign_jobs};
use mondrian_cli::manifest::{Format, Manifest};
use proptest::prelude::*;

fn example(name: &str) -> String {
    let path = format!("{}/../../examples/manifests/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// The acceptance check from the issue, in-process: `--jobs 8` must be a
/// pure speed knob for the shipped branch-join campaign.
#[test]
fn branch_join_artifact_is_byte_identical_across_jobs() {
    let manifest = Manifest::parse(&example("branch_join.toml"), Format::Toml).unwrap();
    let serial = run_campaign_jobs(&manifest, 1, |_| {});
    let parallel = run_campaign_jobs(&manifest, 8, |_| {});
    assert!(serial.verified() && parallel.verified());
    assert_eq!(serial.memo_hits, parallel.memo_hits);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "result.json must not depend on the worker count"
    );
}

/// A sweep manifest whose seed list deliberately contains duplicates, so
/// the full-run memo has work to do: `extra` additional copies of seed 1
/// on top of the base seeds.
fn manifest_with_duplicate_seeds(extra: usize, systems: &str) -> Manifest {
    let mut seeds: Vec<String> = vec!["1".into(), "2".into(), "3".into()];
    seeds.extend(std::iter::repeat_n("1".to_string(), extra));
    let text = format!(
        r#"
        [campaign]
        name = "memo-prop"
        systems = [{systems}]
        tuples_per_vault = 32

        [sweep]
        seeds = [{}]

        [[stage]]
        op = "filter"

        [[stage]]
        op = "count_by_key"
    "#,
        seeds.join(", ")
    );
    Manifest::parse(&text, Format::Toml).unwrap()
}

proptest! {
    /// Memo consistency: for generated sweeps containing duplicate
    /// effective keys, any jobs count serves every duplicate point from
    /// the memo (never re-simulating it), flags exactly the same runs as
    /// memoized as the serial engine does, and emits a byte-identical
    /// artifact.
    #[test]
    fn duplicate_sweep_points_always_memoize(
        params in (1usize..4, 2usize..9, 0u64..2)
    ) {
        let (extra, jobs, sys) = params;
        let systems = if sys == 0 { "\"cpu\"" } else { "\"cpu\", \"nmp-rand\"" };
        let manifest = manifest_with_duplicate_seeds(extra, systems);
        let serial = run_campaign(&manifest, |_| {});
        let parallel = run_campaign_jobs(&manifest, jobs, |_| {});

        // Every duplicate effective-key point is a memo hit: per system,
        // 3 unique seeds simulate and `extra` duplicates clone.
        let system_count = manifest.systems.len();
        prop_assert_eq!(parallel.memo_hits, extra * system_count);
        prop_assert_eq!(parallel.memo_hits, serial.memo_hits);
        for (s, p) in serial.runs.iter().zip(&parallel.runs) {
            prop_assert_eq!(s.spec, p.spec);
            prop_assert_eq!(
                s.memoized, p.memoized,
                "run {:?} memo decision depends on scheduling", p.spec
            );
        }
        prop_assert!(parallel.verified());
        prop_assert_eq!(serial.to_json(), parallel.to_json());
    }
}
