//! Observability must be free: turning on the progress sink or building
//! a trace must never change the result artifact, and the trace itself —
//! replayed from the deterministic charged schedule — must be
//! byte-identical for every worker count.
//!
//! Three angles:
//!
//! * every shipped example manifest runs byte-identically with the
//!   progress sink attached vs detached, and its trace matches across
//!   `--jobs 1` and `--jobs 8`;
//! * a property over generated campaigns (serial / branch / stream
//!   layouts × one or two systems × jobs ladder) asserting the same; and
//! * a golden schema check on the exported Chrome trace JSON: required
//!   keys on every event, timestamps monotone within each `(pid, tid)`
//!   lane, and every `B` closed by a matching `E`.

use std::sync::Mutex;

use mondrian_cli::campaign::{run_campaign_jobs, run_campaign_sink, Campaign};
use mondrian_cli::manifest::{Format, Manifest};
use mondrian_cli::value::{parse_json, Value};
use mondrian_obs::{ProgressEvent, ProgressSink, Tracer};
use mondrian_pipeline::trace_run;
use proptest::prelude::*;

fn example(name: &str) -> String {
    let path = format!("{}/../../examples/manifests/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// A sink that records every event line, like `--progress jsonl` does.
#[derive(Default)]
struct CollectingSink(Mutex<Vec<String>>);

impl ProgressSink for CollectingSink {
    fn emit(&self, run: &str, event: &ProgressEvent) {
        self.0.lock().unwrap().push(event.to_jsonl(run));
    }
}

/// Builds the trace exactly the way `mondrian run --trace` does: replay
/// every run's charged schedule into one tracer, one process per run.
fn trace_of(campaign: &Campaign) -> String {
    let mut tracer = Tracer::new();
    for (pid, run) in campaign.runs.iter().enumerate() {
        trace_run(&mut tracer, pid as u64, &run.spec.id(), run.report.as_ref().unwrap());
    }
    tracer.export()
}

/// The acceptance check from the issue, in-process, for every shipped
/// example manifest: observers on vs off, jobs 1 vs 8 — one artifact,
/// one trace.
#[test]
fn examples_artifact_and_trace_ignore_observers_and_jobs() {
    for name in ["branch_join.toml", "cogroup_union.toml", "stream_chain.toml"] {
        let manifest = Manifest::parse(&example(name), Format::Toml).unwrap();
        let plain = run_campaign_jobs(&manifest, 1, |_| {});
        let sink = CollectingSink::default();
        let observed = run_campaign_sink(&manifest, 8, &sink, |_| {});
        assert!(plain.verified() && observed.verified());
        assert_eq!(
            plain.to_json(),
            observed.to_json(),
            "{name}: result.json must not depend on observers or worker count"
        );
        assert_eq!(
            trace_of(&plain),
            trace_of(&observed),
            "{name}: trace must be byte-identical across jobs"
        );
        let events = sink.0.lock().unwrap();
        assert!(
            events.iter().any(|l| l.contains("\"stage_finished\"")),
            "{name}: the sink saw stage lifecycle events"
        );
        assert!(
            events.iter().any(|l| l.contains("\"sweep_point_done\"")),
            "{name}: the sink saw sweep progress"
        );
        for line in events.iter() {
            parse_json(line).unwrap_or_else(|e| panic!("{name}: bad jsonl {line}: {e}"));
        }
    }
}

fn layout_manifest(concurrency: &str, systems: &str, tuples: u64) -> Manifest {
    let text = format!(
        r#"
        [campaign]
        name = "obs-prop"
        systems = [{systems}]
        tuples_per_vault = {tuples}
        concurrency = "{concurrency}"

        [[stage]]
        op = "filter"
        modulus = 3
        remainder = 1

        [[stage]]
        op = "group_by_key"

        [[stage]]
        op = "filter"
        input = "source"
        modulus = 2
        remainder = 0

        [[stage]]
        op = "join"
        input = 1
        build = 2
    "#
    );
    Manifest::parse(&text, Format::Toml).unwrap()
}

proptest! {
    /// Observability is free for every schedule layout: the artifact is
    /// byte-identical with the sink attached, and the replayed trace is
    /// byte-identical for any worker count.
    #[test]
    fn observers_never_perturb_artifact_or_trace(
        params in (0usize..3, 0usize..2, 2usize..9, 32u64..65)
    ) {
        let (layout, sys, jobs, tuples) = params;
        let concurrency = ["serial", "branch", "stream"][layout];
        let systems = if sys == 0 { "\"cpu\"" } else { "\"cpu\", \"mondrian\"" };
        let manifest = layout_manifest(concurrency, systems, tuples);
        let serial = run_campaign_jobs(&manifest, 1, |_| {});
        let sink = CollectingSink::default();
        let observed = run_campaign_sink(&manifest, jobs, &sink, |_| {});
        prop_assert!(serial.verified() && observed.verified());
        prop_assert_eq!(serial.to_json(), observed.to_json());
        prop_assert_eq!(trace_of(&serial), trace_of(&observed));
        prop_assert!(!sink.0.lock().unwrap().is_empty());
    }
}

/// Walks every `traceEvents` entry of an exported trace and checks the
/// Chrome trace-event schema obligations the viewer relies on.
fn check_trace_schema(json: &str) {
    let doc = parse_json(json).expect("trace is valid JSON");
    assert_eq!(
        doc.get("otherData").and_then(|o| o.get("ts_unit")).and_then(Value::as_str),
        Some("simulated_ps"),
        "the ps-as-µs convention is declared"
    );
    let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert!(!events.is_empty());
    let mut last_ts: std::collections::BTreeMap<(i64, i64), i64> = Default::default();
    let mut open: std::collections::BTreeMap<(i64, i64), i64> = Default::default();
    let mut spans = 0u64;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("every event has ph");
        let pid = e.get("pid").and_then(Value::as_int).expect("every event has pid");
        let tid = e.get("tid").and_then(Value::as_int).expect("every event has tid");
        match ph {
            "M" => {
                // Metadata: a name and a string args.name, no ts needed.
                let name = e.get("name").and_then(Value::as_str).unwrap();
                assert!(name == "process_name" || name == "thread_name");
                assert!(e.get("args").and_then(|a| a.get("name")).is_some());
                continue;
            }
            "B" | "E" | "C" => {}
            other => panic!("unexpected ph {other:?}"),
        }
        let ts = e.get("ts").and_then(Value::as_int).expect("timed events carry integer ts");
        assert!(ts >= 0);
        let lane = (pid, tid);
        let last = last_ts.entry(lane).or_insert(0);
        assert!(ts >= *last, "lane {lane:?} ts went backwards: {ts} < {last}");
        *last = ts;
        match ph {
            "B" => {
                assert!(e.get("name").and_then(Value::as_str).is_some(), "B events are named");
                *open.entry(lane).or_insert(0) += 1;
                spans += 1;
            }
            "E" => {
                let depth = open.get_mut(&lane).expect("E without B");
                assert!(*depth > 0, "E without open B on lane {lane:?}");
                *depth -= 1;
            }
            _ => {
                // Counter: every series value is numeric.
                let Some(Value::Table(args)) = e.get("args") else {
                    panic!("C event without args table")
                };
                assert!(!args.is_empty());
                for v in args.values() {
                    assert!(matches!(v, Value::Int(_) | Value::Float(_)));
                }
            }
        }
    }
    assert!(open.values().all(|&d| d == 0), "unmatched B/E pairs: {open:?}");
    assert!(spans > 0, "the trace carries at least one span");
}

/// Golden schema test on the shipped streaming example: the exported
/// trace is loadable JSON obeying the trace-event contract.
#[test]
fn stream_chain_trace_obeys_chrome_trace_schema() {
    let manifest = Manifest::parse(&example("stream_chain.toml"), Format::Toml).unwrap();
    let campaign = run_campaign_jobs(&manifest, 2, |_| {});
    let json = trace_of(&campaign);
    check_trace_schema(&json);
    // Every run appears as a named process with its schedule lane.
    for run in &campaign.runs {
        assert!(json.contains(&format!("\"name\":\"{}\"", run.spec.id())));
    }
    assert!(json.contains("\"cat\":\"wave\""), "schedule lane has wave spans");
    assert!(json.contains("\"cat\":\"stage\""), "branch lanes have stage spans");
    assert!(json.contains("\"cat\":\"phase\""), "phase lanes are populated");
    assert!(json.contains("\"cat\":\"stream\""), "streamed stages emit chunk rounds");
    assert!(json.contains("\"ph\":\"C\""), "counter samples are present");
}
