//! The persistent cross-campaign result store, end to end and
//! in-process: warm re-runs must be **byte-identical** to cold runs for
//! every `jobs` × `sim_threads` combination while simulating nothing,
//! corrupted entries must degrade to misses (never into results or exit
//! codes), an edited manifest must re-simulate only the affected DAG
//! suffix, and fault-injected or retried runs must never reach the
//! store.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use mondrian_cli::campaign::{run_campaign_store, store_salt, Campaign, ExitReason};
use mondrian_cli::manifest::{Format, Manifest};
use mondrian_core::fault::FaultPlan;
use mondrian_store::Store;
use proptest::prelude::*;

fn example(name: &str) -> Manifest {
    let path = format!("{}/../../examples/manifests/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let format = if name.ends_with(".json") { Format::Json } else { Format::Toml };
    Manifest::parse(&text, format).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// A unique throwaway store root, removed on drop.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("mondrian-pc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempRoot(dir)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs `manifest` against the store rooted at `root` (opening a fresh
/// [`Store`] instance so hit/miss counters cover exactly this campaign).
fn run_with_store(manifest: &Manifest, jobs: usize, root: &std::path::Path) -> Campaign {
    let store = Arc::new(Store::open(root, &store_salt()).expect("store opens"));
    run_campaign_store(manifest, jobs, Some(store), &(), |_| {})
}

/// Every run that carries a report came from some cache — nothing
/// entered the simulator.
fn simulated_runs(campaign: &Campaign) -> usize {
    campaign
        .runs
        .iter()
        .filter(|run| run.report.is_some() && !run.memoized && !run.memoized_persistent)
        .count()
}

const EXAMPLES: [&str; 6] = [
    "branch_join.toml",
    "cogroup_union.toml",
    "join_campaign.json",
    "limits_showcase.toml",
    "spark_pipeline.toml",
    "stream_chain.toml",
];

/// Cold baselines are expensive; simulate each example once per process
/// and let every proptest case re-warm against the same store. The
/// store roots live until process exit (temp-dir names carry the pid).
fn cold_baseline(name: &'static str) -> (PathBuf, String) {
    static BASELINES: OnceLock<Mutex<HashMap<&'static str, (PathBuf, String)>>> = OnceLock::new();
    let baselines = BASELINES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = baselines.lock().expect("baseline cache poisoned");
    map.entry(name)
        .or_insert_with(|| {
            let root = std::env::temp_dir()
                .join(format!("mondrian-pc-example-{name}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            let manifest = example(name);
            let cold = run_with_store(&manifest, 1, &root);
            assert_eq!(cold.exit().reason, ExitReason::Ok, "{name}: cold run must complete");
            (root, cold.to_json())
        })
        .clone()
}

proptest! {
    /// The acceptance property: for every example manifest, a warm
    /// re-run at any `jobs` × `sim_threads` combination simulates
    /// nothing and produces an artifact byte-identical to the cold run.
    #[test]
    fn warm_reruns_are_byte_identical_and_simulate_nothing(
        case in (0..EXAMPLES.len(), 0..2usize, 0..2usize)
    ) {
        let (which, j, s) = case;
        let (jobs, sim_threads) = ([1usize, 4][j], [1usize, 4][s]);
        let name = EXAMPLES[which];
        let (root, cold_artifact) = cold_baseline(name);
        let mut manifest = example(name);
        manifest.sim_threads = Some(sim_threads);
        let warm = run_with_store(&manifest, jobs, &root);
        prop_assert_eq!(warm.exit().reason, ExitReason::Ok);
        prop_assert_eq!(
            warm.to_json(),
            cold_artifact,
            "{}: warm artifact diverged at jobs={} sim_threads={}",
            name, jobs, sim_threads
        );
        prop_assert_eq!(
            simulated_runs(&warm), 0,
            "{}: a warm re-run must be served entirely from the store", name
        );
        let counters = warm.cache.expect("store attached");
        prop_assert!(counters.run_hits > 0, "{}: warm runs come from run entries", name);
    }
}

const SUFFIX_BASE: &str = r#"
    [campaign]
    name = "suffix"
    systems = ["mondrian"]
    tuples_per_vault = 32
    concurrency = "serial"

    [[stage]]
    op = "filter"
    modulus = 10
    remainder = 0

    [[stage]]
    op = "map"
    key_mul = 3
    key_add = 1

    [[stage]]
    op = "count_by_key"
"#;

#[test]
fn editing_one_stage_resimulates_only_the_dag_suffix() {
    let root = TempRoot::new("suffix");
    let manifest = Manifest::parse(SUFFIX_BASE, Format::Toml).unwrap();
    let cold = run_with_store(&manifest, 1, &root.0);
    let counters = cold.cache.expect("store attached");
    assert_eq!(counters.run_misses, 1, "cold: the full-run probe misses");
    assert_eq!(counters.stage_misses, 3, "cold: every stage probe misses");
    assert_eq!(counters.stage_hits, 0);

    // Swap the final stage: the prefix digest chain is untouched, so
    // stages 0-1 must be served from the store and only the edited
    // suffix re-simulates.
    let edited_text = SUFFIX_BASE.replace("op = \"count_by_key\"", "op = \"sort_by_key\"");
    let edited = Manifest::parse(&edited_text, Format::Toml).unwrap();
    let warm = run_with_store(&edited, 1, &root.0);
    assert_eq!(warm.exit().reason, ExitReason::Ok);
    let counters = warm.cache.expect("store attached");
    assert_eq!(counters.run_misses, 1, "the plan digest changed: no full-run hit");
    assert_eq!(counters.stage_hits, 2, "the unchanged prefix is served from the store");
    assert_eq!(counters.stage_misses, 1, "only the edited stage re-simulates");
    assert!(!warm.runs[0].memoized_persistent);
    // The schema-7 `--timings` artifact carries the proof.
    let timed = warm.to_json_with(true);
    assert!(timed.contains("\"cache.stage_hits\": 2"), "{timed}");
    assert!(timed.contains("\"cache.stage_misses\": 1"), "{timed}");

    // An unedited re-run is a full-run hit: the serial pass never even
    // starts, so no stage probes happen at all.
    let rerun = run_with_store(&manifest, 1, &root.0);
    let counters = rerun.cache.expect("store attached");
    assert_eq!(counters.run_hits, 1);
    assert_eq!(counters.stage_hits + counters.stage_misses, 0);
    assert!(rerun.runs[0].memoized_persistent);
    assert_eq!(rerun.to_json(), cold.to_json());
    let timed = rerun.to_json_with(true);
    assert!(timed.contains("\"memoized_persistent\": true"), "{timed}");
}

#[test]
fn corrupt_entries_fall_back_to_resimulation_with_exit_zero() {
    let root = TempRoot::new("corrupt");
    let manifest = Manifest::parse(SUFFIX_BASE, Format::Toml).unwrap();
    let cold = run_with_store(&manifest, 1, &root.0);
    let cold_artifact = cold.to_json();

    // Vandalize every entry: flip a byte in half of them, truncate the
    // rest. Checksums (and length framing) must catch both.
    let dir = Store::open(&root.0, &store_salt()).unwrap().dir().to_path_buf();
    let mut corrupted = 0;
    for (i, entry) in std::fs::read_dir(&dir).unwrap().flatten().enumerate() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "bin") {
            let mut bytes = std::fs::read(&path).unwrap();
            if i % 2 == 0 {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xff;
            } else {
                bytes.truncate(bytes.len() / 2);
            }
            std::fs::write(&path, &bytes).unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "the cold run must have persisted entries");

    // The warm run detects every corruption, silently re-simulates, and
    // still produces the byte-identical artifact with exit 0.
    let warm = run_with_store(&manifest, 1, &root.0);
    assert_eq!(warm.exit().reason, ExitReason::Ok);
    assert_eq!(warm.to_json(), cold_artifact, "corruption must never leak into results");
    let counters = warm.cache.expect("store attached");
    assert_eq!(counters.run_hits, 0, "corrupt entries are misses");
    assert!(counters.misses() > 0);
    assert_eq!(simulated_runs(&warm), 1, "the run re-simulated from scratch");

    // And the re-simulation overwrote the vandalized entries: the next
    // run is warm again.
    let healed = run_with_store(&manifest, 1, &root.0);
    assert_eq!(healed.cache.expect("store attached").run_hits, 1);
    assert_eq!(healed.to_json(), cold_artifact);
}

/// A two-point sweep with a deterministic fault on run 0.
fn faulted_manifest(fault: FaultPlan) -> Manifest {
    let text = r#"
        [campaign]
        name = "fault-store"
        systems = ["mondrian"]
        tuples_per_vault = 32

        [sweep]
        seeds = [1, 2]

        [[stage]]
        op = "filter"

        [[stage]]
        op = "count_by_key"
    "#;
    let mut manifest = Manifest::parse(text, Format::Toml).unwrap();
    manifest.fault = Some(fault);
    manifest
}

#[test]
fn faulted_runs_are_never_persisted() {
    let root = TempRoot::new("fault");
    let manifest =
        faulted_manifest(FaultPlan { run: 0, panic_at_event: Some(10), ..FaultPlan::default() });
    let campaign = run_with_store(&manifest, 1, &root.0);
    assert_eq!(campaign.exit().reason, ExitReason::WorkerPanic);
    assert_eq!(campaign.runs[0].exit.reason, ExitReason::WorkerPanic);
    assert_eq!(campaign.runs[1].exit.reason, ExitReason::Ok);

    // Only the clean sweep point reached the store: one run entry, and
    // stage/ref entries from its serial pass alone.
    let store = Store::open(&root.0, &store_salt()).unwrap();
    let stats = store.stats().unwrap();
    let by_kind: std::collections::HashMap<&str, u64> =
        stats.kinds.iter().map(|(k, n, _)| (k.as_str(), *n)).collect();
    assert_eq!(by_kind["run"], 1, "the faulted run must never be written");
    assert_eq!(by_kind["stage"], 2, "only the clean run's stages persist");

    // Re-running with the fault still armed: the faulted sweep position
    // never probes the store (it re-simulates and re-faults), while the
    // clean run is served persistently.
    let warm = run_with_store(&manifest, 1, &root.0);
    assert_eq!(warm.runs[0].exit.reason, ExitReason::WorkerPanic, "no stale result served");
    assert!(!warm.runs[0].memoized_persistent);
    assert!(warm.runs[1].memoized_persistent);
    assert_eq!(warm.cache.expect("store attached").run_hits, 1);
    assert_eq!(campaign.to_json(), warm.to_json());
}

#[test]
fn retried_runs_are_never_persisted_even_when_they_recover() {
    let root = TempRoot::new("retry");
    // `times = 1`: the fault fires once and the bounded retry absorbs
    // it — the run completes Ok but must still be barred from the store.
    let manifest = faulted_manifest(FaultPlan {
        run: 0,
        panic_at_event: Some(10),
        times: Some(1),
        ..FaultPlan::default()
    });
    let campaign = run_with_store(&manifest, 1, &root.0);
    assert_eq!(campaign.exit().reason, ExitReason::Ok);
    assert!(campaign.runs[0].retried);

    let store = Store::open(&root.0, &store_salt()).unwrap();
    let stats = store.stats().unwrap();
    assert_eq!(
        stats.kinds.iter().find(|(k, ..)| k == "run").map(|&(_, n, _)| n),
        Some(1),
        "a retried run must never be written, even after recovering"
    );

    // A clean campaign over the same sweep: the recovered run's sweep
    // point misses (it was never persisted) and re-simulates.
    let mut clean = manifest.clone();
    clean.fault = None;
    let warm = run_with_store(&clean, 1, &root.0);
    assert!(!warm.runs[0].memoized_persistent);
    assert!(warm.runs[1].memoized_persistent);
    let counters = warm.cache.expect("store attached");
    assert_eq!(counters.run_hits, 1);
    assert_eq!(counters.run_misses, 1);
}
