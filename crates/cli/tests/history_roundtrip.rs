//! Property coverage for the `BENCH_history.jsonl` trend line: the
//! writer ([`BenchReport::history_line`]) and the JSON parser must
//! round-trip every field for arbitrary commit/campaign strings —
//! including the control characters the writer emits as `\uXXXX`
//! escapes, quotes, backslashes and non-ASCII text — and arbitrary
//! ladders. (The PR 4 parser fix that introduced the `\uXXXX` path had
//! only example-based coverage.)

use mondrian_cli::bench::{BenchPoint, BenchReport};
use mondrian_cli::value::{parse_json, Value};
use proptest::prelude::*;

/// Strings over a deliberately hostile alphabet: C0 control characters
/// (forcing `\uXXXX` escapes), the JSON specials `"` and `\`, ASCII,
/// and multi-byte BMP characters (literal UTF-8 in the line).
fn hostile_string(codes: Vec<u32>) -> String {
    codes
        .into_iter()
        .map(|c| {
            let c = match c % 6 {
                0 => c % 0x20,           // C0 controls → \uXXXX
                1 => u32::from(b'"'),    // quote
                2 => u32::from(b'\\'),   // backslash
                3 => 0x20 + c % 0x5f,    // printable ASCII
                4 => 0xe0 + c % 0x200,   // Latin/Greek supplements
                _ => 0x4e00 + c % 0x100, // CJK (3-byte UTF-8)
            };
            char::from_u32(c).unwrap_or('?')
        })
        .collect()
}

fn report(
    commit_codes: Vec<u32>,
    campaign_codes: Vec<u32>,
    points: Vec<(u64, u64, bool)>,
) -> (String, BenchReport) {
    let commit = hostile_string(commit_codes);
    let campaign = hostile_string(campaign_codes);
    let points: Vec<BenchPoint> = points
        .into_iter()
        .map(|(jobs, wall, identical)| BenchPoint {
            jobs: jobs as usize + 1,
            wall_ms: wall as f64 / 8.0,
            speedup: (wall as f64 / 8.0 + 1.0).recip(),
            events: wall * 3,
            events_per_sec: wall as f64 * 3.0 * 1e3 / (wall as f64 / 8.0).max(1e-9),
            cache_hits: wall % 7,
            identical,
            verified: true,
        })
        .collect();
    let report = BenchReport {
        campaign,
        runs: points.len().max(1),
        memo_hits: 0,
        host_cores: 1,
        sim_threads: 0,
        points,
    };
    (commit, report)
}

proptest! {
    /// Every generated history line is exactly one line of valid JSON,
    /// and parsing it recovers the commit, campaign, core counts and the
    /// full sweep ladder.
    #[test]
    fn history_line_round_trips(
        params in (
            prop::collection::vec(0u32..0x10000, 0..16),
            prop::collection::vec(0u32..0x10000, 0..16),
            prop::collection::vec((0u64..64, 0u64..100_000, any::<bool>()), 1..6),
        )
    ) {
        let (commit_codes, campaign_codes, point_specs) = params;
        let (commit, report) = report(commit_codes, campaign_codes, point_specs);
        let line = report.history_line(&commit);
        prop_assert!(!line.contains('\n'), "jsonl: exactly one line");
        let doc = parse_json(&line).expect("history line is valid JSON");
        prop_assert_eq!(doc.get("commit").and_then(Value::as_str), Some(commit.as_str()));
        prop_assert_eq!(
            doc.get("campaign").and_then(Value::as_str),
            Some(report.campaign.as_str())
        );
        prop_assert_eq!(doc.get("host_cores").and_then(Value::as_int), Some(1));
        prop_assert_eq!(doc.get("runs").and_then(Value::as_int), Some(report.runs as i64));
        let sweep = doc.get("sweep").and_then(Value::as_array).expect("sweep array");
        prop_assert_eq!(sweep.len(), report.points.len());
        for (entry, point) in sweep.iter().zip(&report.points) {
            prop_assert_eq!(entry.get("jobs").and_then(Value::as_int), Some(point.jobs as i64));
            prop_assert_eq!(
                entry.get("identical").and_then(Value::as_bool),
                Some(point.identical)
            );
            // wall_ms is written with three decimals; compare at that
            // precision.
            let wall = entry.get("wall_ms").and_then(Value::as_float).expect("wall_ms");
            prop_assert!((wall - point.wall_ms).abs() < 5e-4, "wall_ms drifted: {wall}");
            let speedup = entry.get("speedup").and_then(Value::as_float).expect("speedup");
            prop_assert!((speedup - point.speedup).abs() < 5e-4);
            // events_per_sec is written with zero decimals.
            let eps = entry
                .get("events_per_sec")
                .and_then(|v| v.as_float().or_else(|| v.as_int().map(|n| n as f64)))
                .expect("events_per_sec");
            prop_assert!((eps - point.events_per_sec).abs() <= 0.5, "events_per_sec drifted");
            prop_assert_eq!(
                entry.get("cache_hits").and_then(Value::as_int),
                Some(point.cache_hits as i64)
            );
        }
    }
}

proptest! {
    /// The underlying writer/parser pair round-trips arbitrary BMP
    /// strings byte-for-byte — the `\uXXXX` escapes the writer emits for
    /// control characters parse back to the identical string.
    #[test]
    fn json_string_escapes_round_trip(codes in prop::collection::vec(0u32..0x10000, 0..64)) {
        let original = hostile_string(codes);
        let json = Value::Str(original.clone()).to_json();
        let parsed = parse_json(&json).expect("writer output is valid JSON");
        prop_assert_eq!(parsed.as_str(), Some(original.as_str()));
    }
}
