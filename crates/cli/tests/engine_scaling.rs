//! Determinism of the parallel engine event loop: the campaign artifact
//! must be byte-identical for every `sim_threads` value, every scheduling
//! mode and every system shape.
//!
//! The engine parallelizes *within* one simulated machine — batches of
//! simultaneous vault ticks poll on a worker pool and the phase tail
//! drains as a parallel sweep — so this is the property with the most
//! room for nondeterminism to leak: thread scheduling touches the event
//! loop itself, not just the sweep executor around it. The property
//! sweeps `sim_threads` ∈ {2, 4, 8} × {serial, branch, stream} × four
//! representative systems against cached serial baselines.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use mondrian_cli::campaign::run_campaign_jobs;
use mondrian_cli::manifest::{Format, Manifest};
use proptest::prelude::*;

fn manifest_text(system: &str, concurrency: &str) -> String {
    format!(
        r#"
        [campaign]
        name = "engine-scaling"
        systems = ["{system}"]
        tuples_per_vault = 32
        concurrency = "{concurrency}"

        [[stage]]
        op = "filter"
        modulus = 3
        remainder = 1

        [[stage]]
        op = "group_by_key"

        [[stage]]
        op = "sort_by_key"
    "#
    )
}

fn artifact(system: &str, concurrency: &str, sim_threads: usize) -> String {
    let text = manifest_text(system, concurrency);
    let mut manifest = Manifest::parse(&text, Format::Toml).unwrap();
    manifest.sim_threads = Some(sim_threads);
    let campaign = run_campaign_jobs(&manifest, 1, |_| {});
    assert!(campaign.verified(), "{system}/{concurrency} x{sim_threads} failed verification");
    campaign.to_json()
}

/// Serial (`sim_threads = 1`) baselines, computed once per
/// `(system, concurrency)` across all property cases.
fn baseline(system: &str, concurrency: &str) -> String {
    static BASELINES: OnceLock<Mutex<HashMap<(String, String), String>>> = OnceLock::new();
    let cache = BASELINES.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (system.to_string(), concurrency.to_string());
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        return hit.clone();
    }
    let fresh = artifact(system, concurrency, 1);
    cache.lock().unwrap().insert(key, fresh.clone());
    fresh
}

const SYSTEMS: [&str; 4] = ["cpu", "nmp-rand", "mondrian-noperm", "mondrian"];
const MODES: [&str; 3] = ["serial", "branch", "stream"];

proptest! {
    /// For every sampled `(system, mode, sim_threads)` point, the whole
    /// campaign artifact — digests, timings, schema-5 metrics counters,
    /// `engine.events` — is byte-identical to the serial event loop's.
    #[test]
    fn artifacts_are_byte_identical_across_sim_threads(
        params in (0usize..4, 0usize..3, 0usize..3)
    ) {
        let (sys, mode, tier) = params;
        let system = SYSTEMS[sys];
        let concurrency = MODES[mode];
        let sim_threads = [2, 4, 8][tier];
        prop_assert_eq!(
            artifact(system, concurrency, sim_threads),
            baseline(system, concurrency),
            "artifact diverged: {}/{} at sim_threads={}",
            system, concurrency, sim_threads
        );
    }
}

/// The full grid, exhaustively: every system × mode × sim_threads ∈
/// {1, 2, 4, 8} pair of artifacts matches (the proptest above samples the
/// same space; this pins the corners regardless of case generation).
#[test]
fn full_grid_matches_serial_baseline() {
    for system in SYSTEMS {
        for concurrency in MODES {
            let base = baseline(system, concurrency);
            for sim_threads in [2usize, 8] {
                assert_eq!(
                    artifact(system, concurrency, sim_threads),
                    base,
                    "artifact diverged: {system}/{concurrency} at sim_threads={sim_threads}"
                );
            }
        }
    }
}
