//! Spark-operator layer (Table 1 of the paper).
//!
//! Table 1 characterizes the common Spark transformations by the basic
//! physical operator each one reduces to. This module encodes that mapping
//! and provides small functional executors so that example pipelines can
//! run end-to-end on real data.

use std::collections::BTreeMap;

use mondrian_workloads::Tuple;

use crate::agg::Aggregates;
use crate::phases::OperatorKind;

/// Spark transformations from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SparkOp {
    Filter,
    Union,
    LookupKey,
    Map,
    FlatMap,
    MapValues,
    GroupByKey,
    Cogroup,
    ReduceByKey,
    Reduce,
    CountByKey,
    AggregateByKey,
    Join,
    SortByKey,
}

impl SparkOp {
    /// All Table 1 operators.
    pub const ALL: [SparkOp; 14] = [
        SparkOp::Filter,
        SparkOp::Union,
        SparkOp::LookupKey,
        SparkOp::Map,
        SparkOp::FlatMap,
        SparkOp::MapValues,
        SparkOp::GroupByKey,
        SparkOp::Cogroup,
        SparkOp::ReduceByKey,
        SparkOp::Reduce,
        SparkOp::CountByKey,
        SparkOp::AggregateByKey,
        SparkOp::Join,
        SparkOp::SortByKey,
    ];

    /// The basic data operator implementing this transformation (Table 1).
    ///
    /// `Union`, `Cogroup` and `FlatMap` lower to their own dedicated
    /// operators — the open operator IR models multi-input and 1→N stages
    /// directly instead of approximating them as plain Scan/Group-by.
    pub fn basic_operator(&self) -> OperatorKind {
        match self {
            SparkOp::Filter | SparkOp::LookupKey | SparkOp::Map | SparkOp::MapValues => {
                OperatorKind::Scan
            }
            SparkOp::Union => OperatorKind::Union,
            SparkOp::FlatMap => OperatorKind::FlatMap,
            SparkOp::Cogroup => OperatorKind::Cogroup,
            SparkOp::GroupByKey
            | SparkOp::ReduceByKey
            | SparkOp::Reduce
            | SparkOp::CountByKey
            | SparkOp::AggregateByKey => OperatorKind::GroupBy,
            SparkOp::Join => OperatorKind::Join,
            SparkOp::SortByKey => OperatorKind::Sort,
        }
    }
}

/// Functional `Filter`: keeps tuples satisfying the predicate.
pub fn filter<F: Fn(&Tuple) -> bool>(rel: &[Tuple], pred: F) -> Vec<Tuple> {
    rel.iter().copied().filter(|t| pred(t)).collect()
}

/// Functional `Map`: transforms every tuple.
pub fn map<F: Fn(Tuple) -> Tuple>(rel: &[Tuple], f: F) -> Vec<Tuple> {
    rel.iter().copied().map(f).collect()
}

/// Functional `MapValues`: transforms payloads, keys untouched.
pub fn map_values<F: Fn(u64) -> u64>(rel: &[Tuple], f: F) -> Vec<Tuple> {
    rel.iter().map(|t| Tuple::new(t.key, f(t.payload))).collect()
}

/// Functional `Union`: concatenates two relations.
pub fn union(a: &[Tuple], b: &[Tuple]) -> Vec<Tuple> {
    let mut out = a.to_vec();
    out.extend_from_slice(b);
    out
}

/// Functional `FlatMap`: expands every tuple through `f`, preserving
/// input order.
pub fn flat_map<I: IntoIterator<Item = Tuple>, F: Fn(Tuple) -> I>(
    rel: &[Tuple],
    f: F,
) -> Vec<Tuple> {
    rel.iter().copied().flat_map(f).collect()
}

/// Functional `Cogroup`: per key, the payload lists of both sides in
/// input order — Spark's `(K, (Iterable[V], Iterable[W]))`.
pub fn cogroup(a: &[Tuple], b: &[Tuple]) -> BTreeMap<u64, (Vec<u64>, Vec<u64>)> {
    let mut out: BTreeMap<u64, (Vec<u64>, Vec<u64>)> = BTreeMap::new();
    for t in a {
        out.entry(t.key).or_default().0.push(t.payload);
    }
    for t in b {
        out.entry(t.key).or_default().1.push(t.payload);
    }
    out
}

/// Functional `LookupKey`: all payloads bound to `key`.
pub fn lookup_key(rel: &[Tuple], key: u64) -> Vec<u64> {
    rel.iter().filter(|t| t.key == key).map(|t| t.payload).collect()
}

/// Functional `ReduceByKey` with an associative payload combiner.
pub fn reduce_by_key<F: Fn(u64, u64) -> u64>(rel: &[Tuple], f: F) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for t in rel {
        out.entry(t.key).and_modify(|v| *v = f(*v, t.payload)).or_insert(t.payload);
    }
    out
}

/// Functional `CountByKey`.
pub fn count_by_key(rel: &[Tuple]) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for t in rel {
        *out.entry(t.key).or_insert(0) += 1;
    }
    out
}

/// Functional `AggregateByKey` with the paper's six aggregates.
pub fn aggregate_by_key(rel: &[Tuple]) -> BTreeMap<u64, Aggregates> {
    let mut out: BTreeMap<u64, Aggregates> = BTreeMap::new();
    for t in rel {
        out.entry(t.key).or_default().update(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the full Table 1 mapping: all fourteen Spark transformations
    /// and the exact basic operator each one lowers to. `Union`, `Cogroup`
    /// and `FlatMap` must reach their dedicated operators — any
    /// Scan/Group-by aliasing regression fails here.
    #[test]
    fn table1_mapping_is_pinned() {
        use OperatorKind::*;
        let expected = [
            (SparkOp::Filter, Scan),
            (SparkOp::Union, Union),
            (SparkOp::LookupKey, Scan),
            (SparkOp::Map, Scan),
            (SparkOp::FlatMap, FlatMap),
            (SparkOp::MapValues, Scan),
            (SparkOp::GroupByKey, GroupBy),
            (SparkOp::Cogroup, Cogroup),
            (SparkOp::ReduceByKey, GroupBy),
            (SparkOp::Reduce, GroupBy),
            (SparkOp::CountByKey, GroupBy),
            (SparkOp::AggregateByKey, GroupBy),
            (SparkOp::Join, Join),
            (SparkOp::SortByKey, Sort),
        ];
        assert_eq!(expected.len(), SparkOp::ALL.len(), "every Table 1 row is pinned");
        for ((op, kind), listed) in expected.into_iter().zip(SparkOp::ALL) {
            assert_eq!(op, listed, "pin order matches SparkOp::ALL");
            assert_eq!(op.basic_operator(), kind, "{op:?} lowers to {kind:?}");
        }
        // 4 Scan-backed, 5 GroupBy-backed, and one dedicated operator each
        // for Union, Cogroup, FlatMap, Join, Sort.
        let count = |k| SparkOp::ALL.iter().filter(|o| o.basic_operator() == k).count();
        assert_eq!(count(Scan), 4);
        assert_eq!(count(GroupBy), 5);
        for dedicated in [Union, Cogroup, FlatMap] {
            assert_eq!(count(dedicated), 1, "{dedicated:?} is not aliased");
        }
    }

    #[test]
    fn functional_executors() {
        let rel = vec![Tuple::new(1, 10), Tuple::new(2, 5), Tuple::new(1, 7)];
        assert_eq!(filter(&rel, |t| t.key == 1).len(), 2);
        assert_eq!(map(&rel, |t| Tuple::new(t.key + 1, t.payload))[0].key, 2);
        assert_eq!(map_values(&rel, |p| p * 2)[1].payload, 10);
        assert_eq!(union(&rel, &rel).len(), 6);
        assert_eq!(lookup_key(&rel, 1), vec![10, 7]);
        let expanded = flat_map(&rel, |t| [t, Tuple::new(t.key, t.payload + 1)]);
        assert_eq!(expanded.len(), 6, "every tuple doubled");
        let cg = cogroup(&rel, &[Tuple::new(1, 99)]);
        assert_eq!(cg[&1], (vec![10, 7], vec![99]));
        assert_eq!(cg[&2], (vec![5], vec![]));
        let sums = reduce_by_key(&rel, |a, b| a + b);
        assert_eq!(sums[&1], 17);
        assert_eq!(count_by_key(&rel)[&1], 2);
        let aggs = aggregate_by_key(&rel);
        assert_eq!(aggs[&1].max, 10);
        assert_eq!(aggs[&2].count, 1);
    }
}
