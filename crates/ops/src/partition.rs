//! The partitioning phase: histogram build and data distribution.
//!
//! All operators except Scan start by shuffling tuples to destination
//! partitions (Table 2). The phase has two steps:
//!
//! 1. **histogram build** — every source counts how many of its tuples land
//!    in each destination, so destinations can be pre-sized and each source
//!    gets a disjoint cursor range (this step exists on every system,
//!    including the CPU baseline, §5.4), and
//! 2. **data distribution** — tuples are copied to their destinations.
//!    Conventional systems compute an exact destination address per tuple
//!    (cursor load → dependent store → cursor update); permutable systems
//!    just ship the object to the destination vault and let its controller
//!    append it (§5.3).

use mondrian_cores::{Dep, Kernel, MicroOp, StoreKind};
use mondrian_workloads::{Tuple, TUPLE_BYTES};

use crate::hash::PartitionScheme;
use crate::opqueue::OpQueue;
use crate::Data;

/// Per-destination tuple counts from one source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[d]` = tuples headed to destination `d`.
    pub counts: Vec<u64>,
}

/// Functional histogram build.
pub fn histogram(data: &[Tuple], scheme: PartitionScheme) -> Histogram {
    let mut counts = Vec::new();
    histogram_into(data, scheme, &mut counts);
    Histogram { counts }
}

/// Functional histogram build into a caller-provided buffer, clearing and
/// resizing it — hot loops reuse one allocation across many sources
/// instead of allocating a fresh count array per call.
pub fn histogram_into(data: &[Tuple], scheme: PartitionScheme, counts: &mut Vec<u64>) {
    counts.clear();
    counts.resize(scheme.parts() as usize, 0);
    for t in data {
        counts[scheme.bucket(t.key) as usize] += 1;
    }
}

/// Functional data distribution: destination buckets in source order.
/// Buckets are pre-sized from a histogram pass so the distribution pass
/// never reallocates.
pub fn partition_tuples(data: &[Tuple], scheme: PartitionScheme) -> Vec<Vec<Tuple>> {
    let h = histogram(data, scheme);
    let mut out: Vec<Vec<Tuple>> =
        h.counts.iter().map(|&c| Vec::with_capacity(c as usize)).collect();
    for t in data {
        out[scheme.bucket(t.key) as usize].push(*t);
    }
    out
}

/// Exclusive prefix sum over destination counts (cursor initialization).
pub fn exclusive_prefix(counts: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &c in counts {
        out.push(acc);
        acc += c;
    }
    out
}

/// Computes, for each tuple of `data`, the exact destination *byte* address
/// the conventional scatter would write, advancing `cursors` (byte
/// addresses, one per destination) exactly like the real cursor array.
pub fn scatter_addresses(data: &[Tuple], scheme: PartitionScheme, cursors: &mut [u64]) -> Vec<u64> {
    assert_eq!(cursors.len(), scheme.parts() as usize, "one cursor per destination");
    data.iter()
        .map(|t| {
            let b = scheme.bucket(t.key) as usize;
            let addr = cursors[b];
            cursors[b] += TUPLE_BYTES as u64;
            addr
        })
        .collect()
}

/// Scalar histogram-build kernel: the conventional inner loop with its
/// dependence chain — load tuple → hash → load counter (address depends on
/// the hash) → increment → store.
pub struct HistogramKernel {
    data: Data,
    base: u64,
    counter_base: u64,
    scheme: PartitionScheme,
    i: usize,
    q: OpQueue,
}

impl HistogramKernel {
    /// Builds the histogram of `data` (at `base`) into the counter array at
    /// `counter_base` (8 B entries, one per destination).
    pub fn new(data: Data, base: u64, counter_base: u64, scheme: PartitionScheme) -> Self {
        Self { data, base, counter_base, scheme, i: 0, q: OpQueue::new() }
    }
}

impl Kernel for HistogramKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let t = self.data[self.i];
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            let bucket = self.scheme.bucket(t.key) as u64;
            let counter = self.counter_base + bucket * 8;
            self.q.push(MicroOp::load(addr, TUPLE_BYTES));
            self.q.push(MicroOp::compute_dep(self.scheme.scalar_cost() + 2));
            self.q.push(MicroOp::load_dep(counter, 8));
            self.q.push(MicroOp::compute_dep(1));
            self.q.push(MicroOp::store(counter, 8));
            self.i += 1;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "partition.histogram"
    }
}

/// SIMD histogram kernel (Mondrian): tuples stream in, hashes are computed
/// eight at a time, but the counter updates remain scalar — SIMD cannot
/// scatter-increment, which is exactly why Mondrian-noperm stays
/// compute-bound in §7.1.
pub struct SimdHistogramKernel {
    data: Data,
    base: u64,
    counter_base: u64,
    scheme: PartitionScheme,
    i: usize,
    configured: bool,
    q: OpQueue,
}

impl SimdHistogramKernel {
    /// See [`HistogramKernel::new`]; input streams through buffer 0.
    pub fn new(data: Data, base: u64, counter_base: u64, scheme: PartitionScheme) -> Self {
        Self { data, base, counter_base, scheme, i: 0, configured: false, q: OpQueue::new() }
    }
}

impl Kernel for SimdHistogramKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if !self.configured {
            self.configured = true;
            return Some(MicroOp::ConfigStream {
                buf: 0,
                base: self.base,
                len: self.data.len() as u64 * TUPLE_BYTES as u64,
            });
        }
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let group = (self.data.len() - self.i).min(8);
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            {
                // Pop in 64 B pieces: finer grain keeps the in-order core fed
                // even when the buffer holds less than a full SIMD group.
                let mut off = 0u32;
                while off < group as u32 * TUPLE_BYTES {
                    let piece = (group as u32 * TUPLE_BYTES - off).min(64);
                    self.q.push(MicroOp::stream_load(0, addr + off as u64, piece));
                    off += piece;
                }
            }
            self.q.push(MicroOp::Simd { dep: Dep::OnPrevLoad });
            for k in 0..group {
                let bucket = self.scheme.bucket(self.data[self.i + k].key) as u64;
                let counter = self.counter_base + bucket * 8;
                // Hashes are already in the vector register: the counter
                // update is scalar but not address-dependent on a pending
                // memory load.
                self.q.push(MicroOp::load(counter, 8));
                self.q.push(MicroOp::compute_dep(1));
                self.q.push(MicroOp::store(counter, 8));
            }
            self.i += group;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "partition.histogram.simd"
    }
}

/// Conventional scatter kernel: per tuple, load → hash → load cursor
/// (dependent) → store tuple to the cursor's address → bump cursor.
pub struct ScatterKernel {
    data: Data,
    base: u64,
    cursor_base: u64,
    dst_addrs: Vec<u64>,
    store_kind: StoreKind,
    scheme: PartitionScheme,
    i: usize,
    q: OpQueue,
}

impl ScatterKernel {
    /// Scatters `data` (at `base`) to the pre-computed destination
    /// addresses (from [`scatter_addresses`]), with the cursor array at
    /// `cursor_base`. `store_kind` distinguishes the CPU's cacheable
    /// scatter from the NMP baseline's remote streaming writes.
    ///
    /// # Panics
    ///
    /// Panics if `dst_addrs` does not cover every tuple.
    pub fn new(
        data: Data,
        base: u64,
        cursor_base: u64,
        dst_addrs: Vec<u64>,
        store_kind: StoreKind,
        scheme: PartitionScheme,
    ) -> Self {
        assert_eq!(dst_addrs.len(), data.len(), "one destination per tuple");
        Self { data, base, cursor_base, dst_addrs, store_kind, scheme, i: 0, q: OpQueue::new() }
    }
}

impl Kernel for ScatterKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let t = self.data[self.i];
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            let bucket = self.scheme.bucket(t.key) as u64;
            let cursor = self.cursor_base + bucket * 8;
            self.q.push(MicroOp::load(addr, TUPLE_BYTES));
            self.q.push(MicroOp::compute_dep(self.scheme.scalar_cost() + 2));
            self.q.push(MicroOp::load_dep(cursor, 8));
            self.q.push(MicroOp::Store {
                addr: self.dst_addrs[self.i],
                bytes: TUPLE_BYTES,
                kind: self.store_kind,
            });
            self.q.push(MicroOp::store(cursor, 8));
            self.i += 1;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "partition.scatter"
    }
}

/// SIMD scatter without permutability (Mondrian-noperm): hashes vectorize,
/// but each tuple still needs a dependent cursor load and an exact-address
/// store — "Mondrian-noperm cannot use SIMD instructions throughout the
/// partition loop" (§7.1).
pub struct SimdScatterKernel {
    data: Data,
    base: u64,
    cursor_base: u64,
    dst_addrs: Vec<u64>,
    scheme: PartitionScheme,
    i: usize,
    configured: bool,
    q: OpQueue,
}

impl SimdScatterKernel {
    /// See [`ScatterKernel::new`]; input streams through buffer 0, stores
    /// bypass caches.
    pub fn new(
        data: Data,
        base: u64,
        cursor_base: u64,
        dst_addrs: Vec<u64>,
        scheme: PartitionScheme,
    ) -> Self {
        assert_eq!(dst_addrs.len(), data.len());
        Self {
            data,
            base,
            cursor_base,
            dst_addrs,
            scheme,
            i: 0,
            configured: false,
            q: OpQueue::new(),
        }
    }
}

impl Kernel for SimdScatterKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if !self.configured {
            self.configured = true;
            return Some(MicroOp::ConfigStream {
                buf: 0,
                base: self.base,
                len: self.data.len() as u64 * TUPLE_BYTES as u64,
            });
        }
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let group = (self.data.len() - self.i).min(8);
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            {
                // Pop in 64 B pieces: finer grain keeps the in-order core fed
                // even when the buffer holds less than a full SIMD group.
                let mut off = 0u32;
                while off < group as u32 * TUPLE_BYTES {
                    let piece = (group as u32 * TUPLE_BYTES - off).min(64);
                    self.q.push(MicroOp::stream_load(0, addr + off as u64, piece));
                    off += piece;
                }
            }
            self.q.push(MicroOp::Simd { dep: Dep::OnPrevLoad });
            for k in 0..group {
                let t = self.data[self.i + k];
                let bucket = self.scheme.bucket(t.key) as u64;
                let cursor = self.cursor_base + bucket * 8;
                self.q.push(MicroOp::load(cursor, 8));
                self.q.push(MicroOp::Store {
                    addr: self.dst_addrs[self.i + k],
                    bytes: TUPLE_BYTES,
                    kind: StoreKind::Streaming,
                });
                self.q.push(MicroOp::store(cursor, 8));
            }
            self.i += group;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "partition.scatter.simd"
    }
}

/// Permutable scatter kernel (NMP-perm): no cursor, no exact address — just
/// hash to a destination vault and ship the object (§5.3: "Permutability
/// eschews the need for destination address calculation and greatly reduces
/// dependencies in the code").
pub struct PermutableScatterKernel {
    data: Data,
    base: u64,
    dst_vaults: Vec<u32>,
    i: usize,
    q: OpQueue,
}

impl PermutableScatterKernel {
    /// Ships each tuple of `data` (at `base`) to `dst_vaults[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `dst_vaults` does not cover every tuple.
    pub fn new(data: Data, base: u64, dst_vaults: Vec<u32>) -> Self {
        assert_eq!(dst_vaults.len(), data.len(), "one destination vault per tuple");
        Self { data, base, dst_vaults, i: 0, q: OpQueue::new() }
    }
}

impl Kernel for PermutableScatterKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            self.q.push(MicroOp::load(addr, TUPLE_BYTES));
            self.q.push(MicroOp::compute_dep(2));
            self.q.push(MicroOp::Store {
                addr: 0,
                bytes: TUPLE_BYTES,
                kind: StoreKind::Permutable { dst_vault: self.dst_vaults[self.i] },
            });
            self.i += 1;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "partition.scatter.perm"
    }
}

/// Permutable SIMD scatter (full Mondrian): streams in, hashes eight
/// tuples per SIMD op, ships whole objects — "SIMD instructions across the
/// entire partition loop" (§7.1), shifting the bottleneck to the SerDes
/// links.
pub struct SimdPermutableScatterKernel {
    data: Data,
    base: u64,
    dst_vaults: Vec<u32>,
    i: usize,
    configured: bool,
    q: OpQueue,
}

impl SimdPermutableScatterKernel {
    /// See [`PermutableScatterKernel::new`].
    pub fn new(data: Data, base: u64, dst_vaults: Vec<u32>) -> Self {
        assert_eq!(dst_vaults.len(), data.len());
        Self { data, base, dst_vaults, i: 0, configured: false, q: OpQueue::new() }
    }
}

impl Kernel for SimdPermutableScatterKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if !self.configured {
            self.configured = true;
            return Some(MicroOp::ConfigStream {
                buf: 0,
                base: self.base,
                len: self.data.len() as u64 * TUPLE_BYTES as u64,
            });
        }
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let group = (self.data.len() - self.i).min(8);
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            {
                // Pop in 64 B pieces: finer grain keeps the in-order core fed
                // even when the buffer holds less than a full SIMD group.
                let mut off = 0u32;
                while off < group as u32 * TUPLE_BYTES {
                    let piece = (group as u32 * TUPLE_BYTES - off).min(64);
                    self.q.push(MicroOp::stream_load(0, addr + off as u64, piece));
                    off += piece;
                }
            }
            self.q.push(MicroOp::Simd { dep: Dep::OnPrevLoad });
            for k in 0..group {
                self.q.push(MicroOp::Store {
                    addr: 0,
                    bytes: TUPLE_BYTES,
                    kind: StoreKind::Permutable { dst_vault: self.dst_vaults[self.i + k] },
                });
            }
            self.i += group;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "partition.scatter.perm.simd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: u64) -> Data {
        (0..n).map(|i| Tuple::new(i * 7 + 3, i)).collect()
    }

    fn drain(k: &mut dyn Kernel) -> Vec<MicroOp> {
        std::iter::from_fn(|| k.next_op()).collect()
    }

    #[test]
    fn histogram_counts_sum_to_n() {
        let d = data(1000);
        let h = histogram(&d, PartitionScheme::LowBits { bits: 4 });
        assert_eq!(h.counts.iter().sum::<u64>(), 1000);
        assert_eq!(h.counts.len(), 16);
    }

    #[test]
    fn partition_preserves_multiset_and_routing() {
        let d = data(500);
        let scheme = PartitionScheme::LowBits { bits: 3 };
        let parts = partition_tuples(&d, scheme);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
        for (p, bucket) in parts.iter().enumerate() {
            assert!(bucket.iter().all(|t| scheme.bucket(t.key) == p as u32));
        }
        // Multiset equality.
        let mut all: Vec<Tuple> = parts.into_iter().flatten().collect();
        let mut orig = d.to_vec();
        all.sort_unstable();
        orig.sort_unstable();
        assert_eq!(all, orig);
    }

    #[test]
    fn prefix_sums() {
        assert_eq!(exclusive_prefix(&[3, 0, 2]), vec![0, 3, 3]);
        assert_eq!(exclusive_prefix(&[]), Vec::<u64>::new());
    }

    #[test]
    fn scatter_addresses_are_dense_per_destination() {
        let d = data(64);
        let scheme = PartitionScheme::LowBits { bits: 2 };
        let h = histogram(&d, scheme);
        // Destination d starts at d * 4096.
        let mut cursors: Vec<u64> = (0..4u64).map(|p| p * 4096).collect();
        let addrs = scatter_addresses(&d, scheme, &mut cursors);
        assert_eq!(addrs.len(), 64);
        // Final cursors advanced by exactly count × 16.
        for (p, &cursor) in cursors.iter().enumerate() {
            assert_eq!(cursor, p as u64 * 4096 + h.counts[p] * 16);
        }
        // Addresses within a destination are strictly increasing by 16.
        for p in 0..4u32 {
            let dst: Vec<u64> = d
                .iter()
                .zip(&addrs)
                .filter(|(t, _)| scheme.bucket(t.key) == p)
                .map(|(_, &a)| a)
                .collect();
            assert!(dst.windows(2).all(|w| w[1] == w[0] + 16));
        }
    }

    #[test]
    fn histogram_kernel_has_dependent_counter_access() {
        let d = data(8);
        let mut k = HistogramKernel::new(d, 0, 1 << 20, PartitionScheme::LowBits { bits: 6 });
        let ops = drain(&mut k);
        // Per tuple: load, compute, load(dep), compute, store = 5 ops.
        assert_eq!(ops.len(), 40);
        let dep_loads =
            ops.iter().filter(|o| matches!(o, MicroOp::Load { dep: Dep::OnPrevLoad, .. })).count();
        assert_eq!(dep_loads, 8, "every counter access is address-dependent");
    }

    #[test]
    fn perm_kernel_is_shorter_than_conventional() {
        let d = data(64);
        let scheme = PartitionScheme::LowBits { bits: 6 };
        let dsts: Vec<u32> = d.iter().map(|t| scheme.bucket(t.key)).collect();
        let mut perm = PermutableScatterKernel::new(d.clone(), 0, dsts);
        let mut cursors = vec![1 << 20; 64];
        let addrs = scatter_addresses(&d, scheme, &mut cursors);
        let mut conv =
            ScatterKernel::new(d.clone(), 0, 1 << 22, addrs, StoreKind::Streaming, scheme);
        let perm_instr: u64 = drain(&mut perm).iter().map(|o| o.instructions()).sum();
        let conv_instr: u64 = drain(&mut conv).iter().map(|o| o.instructions()).sum();
        // Conventional: load+hash+cursor load+2 stores (8 instr/tuple);
        // permutable: load+shift+object store (4 instr/tuple).
        assert!(
            perm_instr * 3 <= conv_instr * 2,
            "permutable loop must be much simpler: {perm_instr} vs {conv_instr}"
        );
    }

    #[test]
    fn simd_perm_kernel_emits_objects_per_tuple() {
        let d = data(24);
        let scheme = PartitionScheme::LowBits { bits: 6 };
        let dsts: Vec<u32> = d.iter().map(|t| scheme.bucket(t.key)).collect();
        let mut k = SimdPermutableScatterKernel::new(d, 0, dsts);
        let ops = drain(&mut k);
        let stores = ops
            .iter()
            .filter(|o| matches!(o, MicroOp::Store { kind: StoreKind::Permutable { .. }, .. }))
            .count();
        assert_eq!(stores, 24);
        let simds = ops.iter().filter(|o| matches!(o, MicroOp::Simd { .. })).count();
        assert_eq!(simds, 3);
    }

    #[test]
    fn scatter_kernel_requires_full_addresses() {
        let d = data(4);
        let scheme = PartitionScheme::LowBits { bits: 2 };
        let dsts: Vec<u32> = d.iter().map(|t| scheme.bucket(t.key)).collect();
        assert_eq!(dsts.len(), 4);
        let result = std::panic::catch_unwind(|| {
            ScatterKernel::new(d.clone(), 0, 0, vec![0; 3], StoreKind::Cached, scheme)
        });
        assert!(result.is_err(), "short dst_addrs must panic");
    }
}
