//! The FlatMap operator: a 1→N expanding scan.
//!
//! Spark's `flatMap` emits an arbitrary number of records per input
//! record (tokenization, explode). The engine models it as a scan whose
//! output is **amplified**: every tuple matching the predicate produces
//! `fanout` output tuples, and the kernels issue `fanout`× the stores a
//! plain scan would — so the memory, mesh and SerDes accounting carries
//! the output-amplification factor end to end.

use mondrian_cores::{Dep, Kernel, MicroOp, StoreKind};
use mondrian_workloads::{Tuple, TUPLE_BYTES};

use crate::opqueue::OpQueue;
use crate::scan::ScanPredicate;
use crate::Data;

/// The `j`-th expansion of one tuple (`j < fanout`): the key is preserved
/// — group structure survives, group sizes multiply by `fanout` — and the
/// payload becomes `payload · fanout + j` (wrapping), so every output
/// tuple is distinct and the mapping is deterministic.
pub fn expand(t: Tuple, fanout: u64, j: u64) -> Tuple {
    Tuple::new(t.key, t.payload.wrapping_mul(fanout).wrapping_add(j))
}

/// Functional flat_map: every tuple matching `pred` expands to `fanout`
/// tuples via [`expand`], in input order.
pub fn flat_map_expand(rel: &[Tuple], pred: ScanPredicate, fanout: u64) -> Vec<Tuple> {
    let fanout = fanout.max(1);
    let mut out = Vec::with_capacity(rel.len() * fanout as usize);
    for t in rel.iter().filter(|t| pred.matches(t)) {
        for j in 0..fanout {
            out.push(expand(*t, fanout, j));
        }
    }
    out
}

/// Scalar 1→N scan kernel (CPU and NMP baselines): one 16 B load plus ~5
/// dependent compare/branch instructions per tuple, then `fanout`
/// consecutive 16 B stores per match.
pub struct FlatMapKernel {
    data: Data,
    base: u64,
    out_base: u64,
    pred: ScanPredicate,
    fanout: u64,
    store_kind: StoreKind,
    i: usize,
    written: u64,
    q: OpQueue,
}

impl FlatMapKernel {
    /// Scans `data` (resident at `base`) and writes `fanout` expanded
    /// tuples per match to `out_base`.
    pub fn new(
        data: Data,
        base: u64,
        out_base: u64,
        pred: ScanPredicate,
        fanout: u64,
        store_kind: StoreKind,
    ) -> Self {
        Self {
            data,
            base,
            out_base,
            pred,
            fanout: fanout.max(1),
            store_kind,
            i: 0,
            written: 0,
            q: OpQueue::new(),
        }
    }
}

impl Kernel for FlatMapKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let t = self.data[self.i];
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            self.q.push(MicroOp::load(addr, TUPLE_BYTES));
            self.q.push(MicroOp::compute_dep(5));
            if self.pred.matches(&t) {
                for _ in 0..self.fanout {
                    let out = self.out_base + self.written * TUPLE_BYTES as u64;
                    self.q.push(MicroOp::Store {
                        addr: out,
                        bytes: TUPLE_BYTES,
                        kind: self.store_kind,
                    });
                    self.written += 1;
                }
            }
            self.i += 1;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "flat_map.scalar"
    }
}

/// SIMD streaming 1→N kernel (Mondrian): tuples arrive through stream
/// buffer 0 in 128 B groups, one 1024-bit SIMD op covers 8 tuples, and
/// each group's matches issue one amplified streaming store.
pub struct SimdFlatMapKernel {
    data: Data,
    base: u64,
    out_base: u64,
    pred: ScanPredicate,
    fanout: u64,
    i: usize,
    written: u64,
    configured: bool,
    q: OpQueue,
}

impl SimdFlatMapKernel {
    /// Streaming expansion of `data` at `base` into `out_base`.
    pub fn new(data: Data, base: u64, out_base: u64, pred: ScanPredicate, fanout: u64) -> Self {
        Self {
            data,
            base,
            out_base,
            pred,
            fanout: fanout.max(1),
            i: 0,
            written: 0,
            configured: false,
            q: OpQueue::new(),
        }
    }
}

impl Kernel for SimdFlatMapKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if !self.configured {
            self.configured = true;
            return Some(MicroOp::ConfigStream {
                buf: 0,
                base: self.base,
                len: self.data.len() as u64 * TUPLE_BYTES as u64,
            });
        }
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let group = (self.data.len() - self.i).min(8);
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            let mut off = 0u32;
            while off < group as u32 * TUPLE_BYTES {
                let piece = (group as u32 * TUPLE_BYTES - off).min(64);
                self.q.push(MicroOp::stream_load(0, addr + off as u64, piece));
                off += piece;
            }
            self.q.push(MicroOp::Simd { dep: Dep::OnPrevLoad });
            let hits =
                self.data[self.i..self.i + group].iter().filter(|t| self.pred.matches(t)).count();
            if hits > 0 {
                let expanded = hits as u64 * self.fanout;
                let out = self.out_base + self.written * TUPLE_BYTES as u64;
                self.q.push(MicroOp::Store {
                    addr: out,
                    bytes: expanded as u32 * TUPLE_BYTES,
                    kind: StoreKind::Streaming,
                });
                self.written += expanded;
            }
            self.i += group;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "flat_map.simd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_ops(k: &mut dyn Kernel) -> Vec<MicroOp> {
        std::iter::from_fn(|| k.next_op()).collect()
    }

    #[test]
    fn expansion_preserves_keys_and_is_injective() {
        let rel: Vec<Tuple> = (0..20).map(|i| Tuple::new(i % 4, i)).collect();
        let out = flat_map_expand(&rel, ScanPredicate::All, 3);
        assert_eq!(out.len(), 60);
        for (i, t) in rel.iter().enumerate() {
            for j in 0..3 {
                assert_eq!(out[i * 3 + j as usize].key, t.key, "keys preserved");
            }
        }
        let distinct: std::collections::BTreeSet<(u64, u64)> =
            out.iter().map(|t| (t.key, t.payload)).collect();
        assert_eq!(distinct.len(), 60, "expanded payloads are distinct");
    }

    #[test]
    fn fanout_one_is_a_plain_filtering_scan() {
        let rel: Vec<Tuple> = (0..20).map(|i| Tuple::new(i, i)).collect();
        let out = flat_map_expand(&rel, ScanPredicate::KeyBelow(5), 1);
        assert_eq!(out, crate::scan::scan_filter(&rel, ScanPredicate::KeyBelow(5)));
    }

    #[test]
    fn scalar_kernel_amplifies_stores_by_fanout() {
        let data: Data = (0..16).map(|i| Tuple::new(i, i)).collect();
        let mut plain =
            FlatMapKernel::new(data.clone(), 0, 1 << 20, ScanPredicate::All, 1, StoreKind::Cached);
        let mut amplified =
            FlatMapKernel::new(data.clone(), 0, 1 << 20, ScanPredicate::All, 4, StoreKind::Cached);
        let stores =
            |ops: &[MicroOp]| ops.iter().filter(|o| matches!(o, MicroOp::Store { .. })).count();
        let plain_ops = collect_ops(&mut plain);
        let amp_ops = collect_ops(&mut amplified);
        assert_eq!(stores(&plain_ops), 16);
        assert_eq!(stores(&amp_ops), 64, "4x the stores of the plain scan");
        // Stores walk the output region contiguously.
        let addrs: Vec<u64> = amp_ops
            .iter()
            .filter_map(|o| match o {
                MicroOp::Store { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert!(addrs.windows(2).all(|w| w[1] == w[0] + 16));
    }

    #[test]
    fn simd_kernel_stores_amplified_bytes() {
        let data: Data = (0..32).map(|i| Tuple::new(i, i)).collect();
        let mut k = SimdFlatMapKernel::new(data, 0, 1 << 20, ScanPredicate::All, 3);
        let ops = collect_ops(&mut k);
        let store_bytes: u32 = ops
            .iter()
            .filter_map(|o| match o {
                MicroOp::Store { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(store_bytes, 32 * 3 * TUPLE_BYTES, "store traffic carries the fanout");
        let simds = ops.iter().filter(|o| matches!(o, MicroOp::Simd { .. })).count();
        assert_eq!(simds, 4, "32 tuples / 8 lanes, loads unamplified");
    }
}
