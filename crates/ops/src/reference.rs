//! Naive reference implementations used to validate the real operators.

use std::collections::BTreeMap;

use mondrian_workloads::Tuple;

use crate::agg::Aggregates;
use crate::scan::ScanPredicate;

/// A joined output row: `(key, r_payload, s_payload)`.
pub type JoinRow = (u64, u64, u64);

/// O(|R|·|S|) nested-loop join — ground truth for join tests.
pub fn nested_loop_join(r: &[Tuple], s: &[Tuple]) -> Vec<JoinRow> {
    let mut out = Vec::new();
    for st in s {
        for rt in r {
            if rt.key == st.key {
                out.push((st.key, rt.payload, st.payload));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Ground-truth sort.
pub fn sorted(rel: &[Tuple]) -> Vec<Tuple> {
    let mut v = rel.to_vec();
    v.sort_unstable();
    v
}

/// Ground-truth group-by with the six aggregates.
pub fn grouped(rel: &[Tuple]) -> BTreeMap<u64, Aggregates> {
    let mut out: BTreeMap<u64, Aggregates> = BTreeMap::new();
    for t in rel {
        out.entry(t.key).or_default().update(t);
    }
    out
}

/// Ground-truth scan: tuples whose key equals `needle`.
pub fn scanned(rel: &[Tuple], needle: u64) -> Vec<Tuple> {
    rel.iter().copied().filter(|t| t.key == needle).collect()
}

/// Ground-truth predicated scan, preserving input order.
pub fn filtered(rel: &[Tuple], pred: ScanPredicate) -> Vec<Tuple> {
    rel.iter().copied().filter(|t| pred.matches(t)).collect()
}

/// Canonicalizes a join result for comparison.
pub fn canonical(mut rows: Vec<JoinRow>) -> Vec<JoinRow> {
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_loop_finds_all_matches() {
        let r = vec![Tuple::new(1, 100), Tuple::new(2, 200)];
        let s = vec![Tuple::new(1, 10), Tuple::new(1, 11), Tuple::new(3, 30)];
        let out = nested_loop_join(&r, &s);
        assert_eq!(out, vec![(1, 100, 10), (1, 100, 11)]);
    }

    #[test]
    fn grouped_aggregates() {
        let rel = vec![Tuple::new(5, 1), Tuple::new(5, 3)];
        let g = grouped(&rel);
        assert_eq!(g[&5].sum, 4);
    }
}
