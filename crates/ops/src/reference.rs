//! Naive reference implementations used to validate the real operators.

use std::collections::BTreeMap;

use mondrian_workloads::Tuple;

use crate::agg::Aggregates;
use crate::scan::ScanPredicate;

/// A joined output row: `(key, r_payload, s_payload)`.
pub type JoinRow = (u64, u64, u64);

/// O(|R|·|S|) nested-loop join — ground truth for join tests.
pub fn nested_loop_join(r: &[Tuple], s: &[Tuple]) -> Vec<JoinRow> {
    let mut out = Vec::new();
    for st in s {
        for rt in r {
            if rt.key == st.key {
                out.push((st.key, rt.payload, st.payload));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Ground-truth sort.
pub fn sorted(rel: &[Tuple]) -> Vec<Tuple> {
    let mut v = rel.to_vec();
    v.sort_unstable();
    v
}

/// Ground-truth group-by with the six aggregates.
pub fn grouped(rel: &[Tuple]) -> BTreeMap<u64, Aggregates> {
    let mut out: BTreeMap<u64, Aggregates> = BTreeMap::new();
    for t in rel {
        out.entry(t.key).or_default().update(t);
    }
    out
}

/// Ground-truth scan: tuples whose key equals `needle`.
pub fn scanned(rel: &[Tuple], needle: u64) -> Vec<Tuple> {
    rel.iter().copied().filter(|t| t.key == needle).collect()
}

/// Ground-truth predicated scan, preserving input order.
pub fn filtered(rel: &[Tuple], pred: ScanPredicate) -> Vec<Tuple> {
    rel.iter().copied().filter(|t| pred.matches(t)).collect()
}

/// Canonicalizes a join result for comparison.
pub fn canonical(mut rows: Vec<JoinRow>) -> Vec<JoinRow> {
    rows.sort_unstable();
    rows
}

/// Ground-truth union: the input relations concatenated in order.
pub fn unioned(inputs: &[&[Tuple]]) -> Vec<Tuple> {
    inputs.iter().flat_map(|rel| rel.iter().copied()).collect()
}

/// Ground-truth cogroup: per key, the six aggregates of each input side
/// (a key appears when either side holds it; the absent side keeps empty
/// aggregates).
pub fn cogrouped(a: &[Tuple], b: &[Tuple]) -> BTreeMap<u64, (Aggregates, Aggregates)> {
    let mut out: BTreeMap<u64, (Aggregates, Aggregates)> = BTreeMap::new();
    for t in a {
        out.entry(t.key).or_default().0.update(t);
    }
    for t in b {
        out.entry(t.key).or_default().1.update(t);
    }
    out
}

/// Ground-truth flat_map: the per-tuple expansion loop over matching
/// tuples, in input order.
pub fn flat_mapped(rel: &[Tuple], pred: ScanPredicate, fanout: u64) -> Vec<Tuple> {
    let fanout = fanout.max(1);
    rel.iter()
        .filter(|t| pred.matches(t))
        .flat_map(|t| (0..fanout).map(move |j| crate::flat_map::expand(*t, fanout, j)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_loop_finds_all_matches() {
        let r = vec![Tuple::new(1, 100), Tuple::new(2, 200)];
        let s = vec![Tuple::new(1, 10), Tuple::new(1, 11), Tuple::new(3, 30)];
        let out = nested_loop_join(&r, &s);
        assert_eq!(out, vec![(1, 100, 10), (1, 100, 11)]);
    }

    #[test]
    fn grouped_aggregates() {
        let rel = vec![Tuple::new(5, 1), Tuple::new(5, 3)];
        let g = grouped(&rel);
        assert_eq!(g[&5].sum, 4);
    }

    #[test]
    fn unioned_concatenates_in_input_order() {
        let a = vec![Tuple::new(1, 1), Tuple::new(2, 2)];
        let b = vec![Tuple::new(0, 9)];
        let out = unioned(&[&a, &b, &a]);
        assert_eq!(out.len(), 5);
        assert_eq!(out[2], Tuple::new(0, 9));
        assert_eq!(out[3], Tuple::new(1, 1));
    }

    #[test]
    fn cogrouped_keeps_one_sided_keys() {
        let a = vec![Tuple::new(1, 10), Tuple::new(1, 20)];
        let b = vec![Tuple::new(2, 5)];
        let g = cogrouped(&a, &b);
        assert_eq!(g.len(), 2);
        assert_eq!(g[&1].0.count, 2);
        assert_eq!(g[&1].1.count, 0, "side B has no key 1");
        assert_eq!(g[&2].1.sum, 5);
    }
}
