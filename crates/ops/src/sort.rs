//! The Sort operator's probe phase: local sorting algorithms.
//!
//! §5.2 identifies mergesort as "the fittest near-memory sort algorithm, as
//! it spends most of the time merging ordered streams of tuples, thus
//! maximizing sequential memory accesses", optimized with "an initial
//! bitonic sort pass, using the SIMD algorithm used in [8], where we sort
//! small groups of tuples that are later merged (intra-stream sorting)".
//! Sorting 16-tuple groups first removes four merge passes (log₂ 16).
//!
//! The CPU baseline sorts each partition with quicksort (§6).

use mondrian_cores::{Dep, Kernel, MicroOp, StoreKind};
use mondrian_workloads::{Tuple, TUPLE_BYTES};

use crate::opqueue::OpQueue;
use crate::Data;

/// Tuples per bitonic group (and the initial merge run length).
pub const BITONIC_RUN: usize = 16;

/// Functional bitonic first pass: sorts every `run`-tuple group in place.
pub fn bitonic_runs(data: &[Tuple], run: usize) -> Vec<Tuple> {
    assert!(run > 0);
    let mut out = data.to_vec();
    for chunk in out.chunks_mut(run) {
        chunk.sort_unstable();
    }
    out
}

/// Functional merge pass: merges adjacent pairs of sorted `run`-tuple runs.
pub fn merge_pass(data: &[Tuple], run: usize) -> Vec<Tuple> {
    assert!(run > 0);
    let mut out = Vec::with_capacity(data.len());
    let mut lo = 0;
    while lo < data.len() {
        let mid = (lo + run).min(data.len());
        let hi = (lo + 2 * run).min(data.len());
        let (mut i, mut j) = (lo, mid);
        while i < mid && j < hi {
            if data[i] <= data[j] {
                out.push(data[i]);
                i += 1;
            } else {
                out.push(data[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&data[i..mid]);
        out.extend_from_slice(&data[j..hi]);
        lo = hi;
    }
    out
}

/// Number of merge passes needed to sort `n` tuples from runs of
/// `initial_run`.
pub fn merge_pass_count(n: usize, initial_run: usize) -> u32 {
    let mut run = initial_run.max(1);
    let mut passes = 0;
    while run < n {
        run *= 2;
        passes += 1;
    }
    passes
}

/// Full functional mergesort (bitonic first pass + merge passes); returns
/// the sorted data and the number of merge passes performed.
pub fn mergesort(data: &[Tuple], initial_run: usize) -> (Vec<Tuple>, u32) {
    let mut v = bitonic_runs(data, initial_run);
    let mut run = initial_run;
    let mut passes = 0;
    while run < v.len() {
        v = merge_pass(&v, run);
        run *= 2;
        passes += 1;
    }
    (v, passes)
}

/// SIMD bitonic-run kernel (Mondrian): per 16-tuple group, two 128 B stream
/// pops, a ~10-stage SIMD sorting network, and two 128 B streaming stores.
pub struct BitonicRunKernel {
    data: Data,
    in_base: u64,
    out_base: u64,
    i: usize,
    configured: bool,
    q: OpQueue,
}

impl BitonicRunKernel {
    /// Sorts 16-tuple groups of `data` (at `in_base`) into `out_base`.
    pub fn new(data: Data, in_base: u64, out_base: u64) -> Self {
        Self { data, in_base, out_base, i: 0, configured: false, q: OpQueue::new() }
    }
}

impl Kernel for BitonicRunKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if !self.configured {
            self.configured = true;
            return Some(MicroOp::ConfigStream {
                buf: 0,
                base: self.in_base,
                len: self.data.len() as u64 * TUPLE_BYTES as u64,
            });
        }
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let group = (self.data.len() - self.i).min(BITONIC_RUN);
            let mut off = 0;
            while off < group {
                let part = (group - off).min(8);
                let addr = self.in_base + ((self.i + off) as u64) * TUPLE_BYTES as u64;
                self.q.push(MicroOp::stream_load(0, addr, part as u32 * TUPLE_BYTES));
                off += part;
            }
            // Bitonic sorting network for 16 keys: ~10 compare-exchange
            // stages on the 1024-bit unit.
            for _ in 0..10 {
                self.q.push(MicroOp::Simd { dep: Dep::OnPrevLoad });
            }
            let mut off = 0;
            while off < group {
                let part = (group - off).min(8);
                let addr = self.out_base + ((self.i + off) as u64) * TUPLE_BYTES as u64;
                self.q.push(MicroOp::Store {
                    addr,
                    bytes: part as u32 * TUPLE_BYTES,
                    kind: StoreKind::Streaming,
                });
                off += part;
            }
            self.i += group;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "sort.bitonic"
    }
}

/// State of one run-pair merge.
#[derive(Debug, Clone, Copy)]
struct PairState {
    /// Input cursor in run A (absolute tuple index).
    ia: usize,
    /// End of run A.
    mid: usize,
    /// Input cursor in run B.
    ib: usize,
    /// End of run B.
    hi: usize,
}

/// One SIMD merge pass (Mondrian): adjacent sorted runs stream through
/// buffers 0 and 1; a bitonic merge network combines eight tuples per
/// round; output streams to the ping-pong buffer.
pub struct SimdMergePassKernel {
    data: Data,
    run: usize,
    in_base: u64,
    out_base: u64,
    pair: Option<PairState>,
    next_lo: usize,
    k: usize,
    q: OpQueue,
}

impl SimdMergePassKernel {
    /// Merges `run`-length runs of `data` (at `in_base`) into `out_base`.
    pub fn new(data: Data, run: usize, in_base: u64, out_base: u64) -> Self {
        assert!(run > 0);
        Self { data, run, in_base, out_base, pair: None, next_lo: 0, k: 0, q: OpQueue::new() }
    }

    fn open_next_pair(&mut self) -> bool {
        if self.next_lo >= self.data.len() {
            return false;
        }
        let lo = self.next_lo;
        let mid = (lo + self.run).min(self.data.len());
        let hi = (lo + 2 * self.run).min(self.data.len());
        self.next_lo = hi;
        self.pair = Some(PairState { ia: lo, mid, ib: mid, hi });
        let t = TUPLE_BYTES as u64;
        self.q.push(MicroOp::ConfigStream {
            buf: 0,
            base: self.in_base + lo as u64 * t,
            len: (mid - lo) as u64 * t,
        });
        if hi > mid {
            self.q.push(MicroOp::ConfigStream {
                buf: 1,
                base: self.in_base + mid as u64 * t,
                len: (hi - mid) as u64 * t,
            });
        }
        true
    }

    /// Replays up to 8 merge steps, returning (from_a, from_b).
    fn replay_group(&mut self) -> (usize, usize) {
        let p = self.pair.as_mut().expect("pair open");
        let (mut a, mut b) = (0, 0);
        while a + b < 8 && (p.ia < p.mid || p.ib < p.hi) {
            let take_a = match (p.ia < p.mid, p.ib < p.hi) {
                (true, true) => self.data[p.ia] <= self.data[p.ib],
                (true, false) => true,
                (false, true) => false,
                (false, false) => unreachable!(),
            };
            if take_a {
                p.ia += 1;
                a += 1;
            } else {
                p.ib += 1;
                b += 1;
            }
        }
        if p.ia >= p.mid && p.ib >= p.hi {
            self.pair = None;
        }
        (a, b)
    }
}

impl Kernel for SimdMergePassKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        while self.q.is_empty() {
            if self.pair.is_none() && !self.open_next_pair() {
                return None;
            }
            if self.pair.is_none() {
                continue; // streams configured; next call produces output
            }
            let before = self.pair.expect("pair exists");
            let (a, b) = self.replay_group();
            if a + b == 0 {
                continue;
            }
            let t = TUPLE_BYTES;
            if a > 0 {
                let addr = self.in_base + before.ia as u64 * t as u64;
                self.q.push(MicroOp::stream_load(0, addr, a as u32 * t));
            }
            if b > 0 {
                let addr = self.in_base + before.ib as u64 * t as u64;
                self.q.push(MicroOp::stream_load(1, addr, b as u32 * t));
            }
            // Bitonic merge network: 4 SIMD stages for 8 tuples.
            for _ in 0..4 {
                self.q.push(MicroOp::Simd { dep: Dep::OnPrevLoad });
            }
            self.q.push(MicroOp::Store {
                addr: self.out_base + self.k as u64 * t as u64,
                bytes: (a + b) as u32 * t,
                kind: StoreKind::Streaming,
            });
            self.k += a + b;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "sort.merge.simd"
    }
}

/// One scalar merge pass (NMP-seq): sequential loads from both runs,
/// a dependent compare per output tuple, sequential stores. High IPC, but
/// log₂(n) passes over the data (§7.1: IPC 0.95 yet slower than NMP-rand).
pub struct ScalarMergePassKernel {
    data: Data,
    run: usize,
    in_base: u64,
    out_base: u64,
    pair: Option<PairState>,
    next_lo: usize,
    k: usize,
    q: OpQueue,
}

impl ScalarMergePassKernel {
    /// Merges `run`-length runs of `data` (at `in_base`) into `out_base`.
    pub fn new(data: Data, run: usize, in_base: u64, out_base: u64) -> Self {
        assert!(run > 0);
        Self { data, run, in_base, out_base, pair: None, next_lo: 0, k: 0, q: OpQueue::new() }
    }
}

impl Kernel for ScalarMergePassKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            let p = match self.pair.as_mut() {
                Some(p) if p.ia < p.mid || p.ib < p.hi => p,
                _ => {
                    if self.next_lo >= self.data.len() {
                        return None;
                    }
                    let lo = self.next_lo;
                    let mid = (lo + self.run).min(self.data.len());
                    let hi = (lo + 2 * self.run).min(self.data.len());
                    self.next_lo = hi;
                    self.pair = Some(PairState { ia: lo, mid, ib: mid, hi });
                    self.pair.as_mut().expect("just set")
                }
            };
            let take_a = match (p.ia < p.mid, p.ib < p.hi) {
                (true, true) => self.data[p.ia] <= self.data[p.ib],
                (true, false) => true,
                _ => false,
            };
            let src = if take_a {
                let s = p.ia;
                p.ia += 1;
                s
            } else {
                let s = p.ib;
                p.ib += 1;
                s
            };
            let t = TUPLE_BYTES;
            self.q.push(MicroOp::load(self.in_base + src as u64 * t as u64, t));
            self.q.push(MicroOp::compute_dep(4));
            self.q.push(MicroOp::Store {
                addr: self.out_base + self.k as u64 * t as u64,
                bytes: t,
                kind: StoreKind::Streaming,
            });
            self.k += 1;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "sort.merge.scalar"
    }
}

/// Quicksort kernel (CPU Sort probe): replays Hoare partitioning over a
/// working copy — sequential scans from both ends per level, dependent
/// compares, stores for the real swaps, insertion sort below 32 tuples.
pub struct QuicksortKernel {
    work: Vec<Tuple>,
    base: u64,
    stack: Vec<(usize, usize)>,
    q: OpQueue,
}

impl QuicksortKernel {
    /// Sorts `data` (resident at `base`) with cacheable accesses.
    pub fn new(data: &[Tuple], base: u64) -> Self {
        let stack = if data.is_empty() { vec![] } else { vec![(0, data.len())] };
        Self { work: data.to_vec(), base, stack, q: OpQueue::new() }
    }

    /// The sorted result (valid once the kernel is drained).
    pub fn into_sorted(mut self) -> Vec<Tuple> {
        // Finish any remaining ranges functionally.
        while self.next_op().is_some() {}
        self.work
    }

    fn addr(&self, idx: usize) -> u64 {
        self.base + idx as u64 * TUPLE_BYTES as u64
    }

    fn process_range(&mut self, lo: usize, hi: usize) {
        let len = hi - lo;
        if len <= 1 {
            return;
        }
        if len <= 32 {
            // Insertion sort: one load + compare chain + store per element.
            self.work[lo..hi].sort_unstable();
            for idx in lo..hi {
                self.q.push(MicroOp::load(self.addr(idx), TUPLE_BYTES));
                self.q.push(MicroOp::compute_dep(6));
                self.q.push(MicroOp::store(self.addr(idx), TUPLE_BYTES));
            }
            return;
        }
        // Median-of-three pivot.
        let mid = lo + len / 2;
        let mut cand = [self.work[lo], self.work[mid], self.work[hi - 1]];
        cand.sort_unstable();
        let pivot = cand[1];
        // Hoare partition with swap counting.
        let (mut i, mut j) = (lo, hi - 1);
        let mut swaps = 0usize;
        loop {
            while self.work[i] < pivot {
                i += 1;
            }
            while self.work[j] > pivot {
                j -= 1;
            }
            if i >= j {
                break;
            }
            self.work.swap(i, j);
            swaps += 1;
            i += 1;
            if j == 0 {
                break;
            }
            j -= 1;
        }
        let split = j + 1;
        // Every element is loaded and compared once per level.
        for idx in lo..hi {
            self.q.push(MicroOp::load(self.addr(idx), TUPLE_BYTES));
            self.q.push(MicroOp::compute_dep(4));
        }
        for s in 0..swaps {
            self.q.push(MicroOp::store(self.addr(lo + s), TUPLE_BYTES));
            self.q.push(MicroOp::store(self.addr(hi - 1 - s), TUPLE_BYTES));
        }
        if split > lo && split < hi {
            self.stack.push((lo, split));
            self.stack.push((split, hi));
        } else {
            // Degenerate split (all-equal range): fall back to functional
            // sort of the range with a linear cost.
            self.work[lo..hi].sort_unstable();
        }
    }
}

impl Kernel for QuicksortKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        while self.q.is_empty() {
            let (lo, hi) = self.stack.pop()?;
            self.process_range(lo, hi);
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "sort.quicksort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn shuffled(n: u64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new((i * 2654435761) % 1000, i)).collect()
    }

    fn drain(k: &mut dyn Kernel) -> Vec<MicroOp> {
        std::iter::from_fn(|| k.next_op()).collect()
    }

    #[test]
    fn mergesort_sorts() {
        let data = shuffled(1000);
        let (sorted, passes) = mergesort(&data, BITONIC_RUN);
        assert_eq!(sorted, reference::sorted(&data));
        assert_eq!(passes, merge_pass_count(1000, BITONIC_RUN));
    }

    #[test]
    fn bitonic_pass_saves_four_merge_passes() {
        // §5.2: starting from 16-tuple runs removes log2(16) = 4 passes.
        let n = 1 << 14;
        assert_eq!(merge_pass_count(n, 1) - merge_pass_count(n, BITONIC_RUN), 4);
    }

    #[test]
    fn merge_pass_merges_pairs() {
        let data = bitonic_runs(&shuffled(64), 4);
        let out = merge_pass(&data, 4);
        for chunk in out.chunks(8) {
            assert!(chunk.windows(2).all(|w| w[0] <= w[1]), "8-runs must be sorted");
        }
    }

    #[test]
    fn merge_pass_handles_ragged_tail() {
        let data = bitonic_runs(&shuffled(37), 8);
        let out = merge_pass(&data, 8);
        assert_eq!(out.len(), 37);
        // First 16 sorted, next 16 sorted, tail 5 sorted.
        assert!(out[0..16].windows(2).all(|w| w[0] <= w[1]));
        assert!(out[16..32].windows(2).all(|w| w[0] <= w[1]));
        assert!(out[32..].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn simd_merge_kernel_replays_exact_consumption() {
        let data: crate::Data = bitonic_runs(&shuffled(64), 16).into();
        let mut k = SimdMergePassKernel::new(data.clone(), 16, 0, 1 << 20);
        let ops = drain(&mut k);
        // Total popped bytes from both streams = total input bytes.
        let popped: u64 = ops
            .iter()
            .filter_map(|o| match o {
                MicroOp::Load { bytes, stream: Some(_), .. } => Some(*bytes as u64),
                _ => None,
            })
            .sum();
        assert_eq!(popped, 64 * 16);
        // Total stored bytes = total output bytes.
        let stored: u64 = ops
            .iter()
            .filter_map(|o| match o {
                MicroOp::Store { bytes, .. } => Some(*bytes as u64),
                _ => None,
            })
            .sum();
        assert_eq!(stored, 64 * 16);
    }

    #[test]
    fn scalar_merge_kernel_one_load_per_output() {
        let data: crate::Data = bitonic_runs(&shuffled(48), 8).into();
        let mut k = ScalarMergePassKernel::new(data, 8, 0, 1 << 20);
        let ops = drain(&mut k);
        let loads = ops.iter().filter(|o| matches!(o, MicroOp::Load { .. })).count();
        let stores = ops.iter().filter(|o| matches!(o, MicroOp::Store { .. })).count();
        assert_eq!(loads, 48);
        assert_eq!(stores, 48);
        // Output addresses are strictly sequential.
        let outs: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                MicroOp::Store { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert!(outs.windows(2).all(|w| w[1] == w[0] + 16));
    }

    #[test]
    fn quicksort_kernel_sorts_and_costs_nlogn() {
        let data = shuffled(512);
        let mut k = QuicksortKernel::new(&data, 0);
        let ops = drain(&mut k);
        let loads = ops.iter().filter(|o| matches!(o, MicroOp::Load { .. })).count();
        // Roughly n log(n/32) loads, certainly more than n and less than n².
        assert!(loads >= 512, "at least one pass: {loads}");
        assert!(loads < 512 * 64, "far below quadratic: {loads}");
        let sorted = QuicksortKernel::new(&data, 0).into_sorted();
        assert_eq!(sorted, reference::sorted(&data));
    }

    #[test]
    fn quicksort_survives_all_equal_keys() {
        let data: Vec<Tuple> = (0..256).map(|i| Tuple::new(7, i)).collect();
        let sorted = QuicksortKernel::new(&data, 0).into_sorted();
        assert_eq!(sorted, reference::sorted(&data));
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(mergesort(&[], 16).0, vec![]);
        let one = vec![Tuple::new(1, 1)];
        assert_eq!(mergesort(&one, 16).0, one);
        let mut k = QuicksortKernel::new(&[], 0);
        assert!(k.next_op().is_none());
    }
}
