//! Aggregation functions for the Group-by operator.
//!
//! §6: "we altered the last step of the join's algorithm to perform six
//! aggregation functions (avg, count, min, max, sum, and sum squared),
//! which are applied to all the tuple groups."

use mondrian_workloads::Tuple;

/// The six running aggregates of one group.
///
/// `avg` is derived from `sum`/`count`, so five accumulators suffice.
///
/// # Example
///
/// ```
/// use mondrian_ops::Aggregates;
/// use mondrian_workloads::Tuple;
/// let mut a = Aggregates::new();
/// a.update(&Tuple::new(1, 4));
/// a.update(&Tuple::new(1, 6));
/// assert_eq!(a.count, 2);
/// assert_eq!(a.sum, 10);
/// assert_eq!(a.avg(), 5.0);
/// assert_eq!((a.min, a.max), (4, 6));
/// assert_eq!(a.sum_sq, 16 + 36);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregates {
    /// Number of tuples in the group.
    pub count: u64,
    /// Sum of payloads (wrapping, as fixed-point hardware would).
    pub sum: u64,
    /// Sum of squared payloads.
    pub sum_sq: u128,
    /// Minimum payload.
    pub min: u64,
    /// Maximum payload.
    pub max: u64,
}

impl Aggregates {
    /// An empty group.
    pub fn new() -> Self {
        Self { count: 0, sum: 0, sum_sq: 0, min: u64::MAX, max: 0 }
    }

    /// Folds one tuple's payload into the aggregates.
    pub fn update(&mut self, t: &Tuple) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(t.payload);
        self.sum_sq = self.sum_sq.wrapping_add((t.payload as u128) * (t.payload as u128));
        self.min = self.min.min(t.payload);
        self.max = self.max.max(t.payload);
    }

    /// Merges another group's aggregates (used when combining partitions).
    pub fn merge(&mut self, other: &Aggregates) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.sum_sq = self.sum_sq.wrapping_add(other.sum_sq);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The sixth aggregate: average payload.
    ///
    /// Returns `NaN` for an empty group.
    pub fn avg(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }
}

impl Default for Aggregates {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_group() {
        let a = Aggregates::new();
        assert_eq!(a.count, 0);
        assert!(a.avg().is_nan());
    }

    #[test]
    fn merge_equals_sequential_update() {
        let tuples: Vec<Tuple> = (0..10).map(|i| Tuple::new(0, i * 3 + 1)).collect();
        let mut whole = Aggregates::new();
        for t in &tuples {
            whole.update(t);
        }
        let (l, r) = tuples.split_at(4);
        let mut a = Aggregates::new();
        let mut b = Aggregates::new();
        for t in l {
            a.update(t);
        }
        for t in r {
            b.update(t);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn wrapping_sum_does_not_panic() {
        let mut a = Aggregates::new();
        a.update(&Tuple::new(0, u64::MAX));
        a.update(&Tuple::new(0, 2));
        assert_eq!(a.sum, 1);
    }
}
