//! Partitioning schemes and hash functions.
//!
//! §6: the Join/Group-by operators hash keys with **low-order bits** (16
//! bits on the CPU, tuned to its private caches; 6 bits on the NMP systems,
//! matching the 64 vaults), while Sort partitions with **high-order bits**
//! so that partition *p* holds keys strictly smaller than partition *p+1*
//! and a local sort finishes the job.

/// How keys map to destination partitions during the partitioning phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Radix partitioning on the low-order `bits` of the key (Join,
    /// Group-by).
    LowBits {
        /// Number of radix bits; `2^bits` partitions.
        bits: u32,
    },
    /// Range partitioning on high-order key bits over `[0, key_bound)`
    /// (Sort): bucket `p` holds keys in `[p*key_bound/parts, ...)`.
    Range {
        /// Number of partitions.
        parts: u32,
        /// Exclusive upper bound of the key universe.
        key_bound: u64,
    },
    /// Hashed bucketing via the [`mix64`] finalizer — used for the
    /// hash-table build/reorder step inside a partition (Table 2's "Hash
    /// keys & reorder").
    HashBits {
        /// Number of hash bits; `2^bits` buckets.
        bits: u32,
    },
}

impl PartitionScheme {
    /// Number of destination partitions.
    pub fn parts(&self) -> u32 {
        match *self {
            PartitionScheme::LowBits { bits } => 1 << bits,
            PartitionScheme::Range { parts, .. } => parts,
            PartitionScheme::HashBits { bits } => 1 << bits,
        }
    }

    /// Destination partition of `key`.
    ///
    /// # Example
    ///
    /// ```
    /// use mondrian_ops::PartitionScheme;
    /// let radix = PartitionScheme::LowBits { bits: 6 };
    /// assert_eq!(radix.bucket(0b101_111111), 0b111111);
    /// let range = PartitionScheme::Range { parts: 4, key_bound: 100 };
    /// assert_eq!(range.bucket(99), 3);
    /// ```
    pub fn bucket(&self, key: u64) -> u32 {
        match *self {
            PartitionScheme::LowBits { bits } => (key & ((1u64 << bits) - 1)) as u32,
            PartitionScheme::Range { parts, key_bound } => {
                let b =
                    ((key.min(key_bound - 1) as u128 * parts as u128) / key_bound as u128) as u32;
                b.min(parts - 1)
            }
            PartitionScheme::HashBits { bits } => (mix64(key) & ((1u64 << bits) - 1)) as u32,
        }
    }

    /// Instruction cost of evaluating this scheme in the scalar inner loop
    /// (mask/shift for radix; multiply/divide bound for range; a few
    /// multiply/xor rounds for the hash finalizer).
    pub fn scalar_cost(&self) -> u32 {
        match self {
            PartitionScheme::LowBits { .. } => 2,
            PartitionScheme::Range { .. } => 4,
            PartitionScheme::HashBits { .. } => 4,
        }
    }
}

/// SplitMix64 finalizer: the hash used for hash-table placement (build and
/// probe) inside a partition.
///
/// # Example
///
/// ```
/// use mondrian_ops::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bits_matches_mask() {
        let s = PartitionScheme::LowBits { bits: 6 };
        assert_eq!(s.parts(), 64);
        for k in [0u64, 1, 63, 64, 65, 1 << 40] {
            assert_eq!(s.bucket(k), (k & 63) as u32);
        }
    }

    #[test]
    fn range_is_monotone_and_balanced() {
        let s = PartitionScheme::Range { parts: 8, key_bound: 1000 };
        assert_eq!(s.parts(), 8);
        let mut prev = 0;
        for k in 0..1000 {
            let b = s.bucket(k);
            assert!(b >= prev, "range buckets must be monotone in key");
            assert!(b < 8);
            prev = b;
        }
        assert_eq!(s.bucket(0), 0);
        assert_eq!(s.bucket(999), 7);
        // Out-of-bound keys clamp to the last bucket.
        assert_eq!(s.bucket(5000), 7);
    }

    #[test]
    fn range_buckets_are_contiguous_key_ranges() {
        let s = PartitionScheme::Range { parts: 4, key_bound: 64 };
        for p in 0..4u64 {
            for k in p * 16..(p + 1) * 16 {
                assert_eq!(s.bucket(k), p as u32);
            }
        }
    }

    #[test]
    fn mix64_spreads_dense_keys() {
        // Dense keys must land in distinct-ish buckets of a 64-entry table.
        let mut hits = [false; 64];
        for k in 0..64u64 {
            hits[(mix64(k) % 64) as usize] = true;
        }
        let filled = hits.iter().filter(|&&h| h).count();
        assert!(filled > 35, "finalizer spreads poorly: {filled}/64");
    }
}
