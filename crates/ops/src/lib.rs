//! # mondrian-ops
//!
//! The four basic in-memory data operators of the paper — **Scan**,
//! **Sort**, **Group-by** and **Join** (§2, Table 2) — in both algorithm
//! families the paper contrasts:
//!
//! * the **CPU-optimized, hash-based** family (radix partitioning with
//!   histogram + scatter, hash-table build/probe joins, hash aggregation,
//!   quicksort), adapted from the multi-core radix join literature the
//!   paper builds on, and
//! * the **NMP-friendly, sort-based** family (SIMD bitonic first pass +
//!   mergesort, sort-merge join, sorted aggregation) that trades extra
//!   passes over the data for purely sequential access (§4.1).
//!
//! Every algorithm exists in two coupled forms:
//!
//! 1. a **functional** implementation over real [`Tuple`] data that
//!    produces verifiable results (tested against naive references), and
//! 2. an **instrumented kernel** ([`mondrian_cores::Kernel`]) that lazily
//!    replays the algorithm's micro-op stream — instruction counts, SIMD
//!    usage, memory addresses and the dependence structure — for the timing
//!    model. Kernels derive their decisions from the same data, so the
//!    simulated access pattern is the real access pattern.
//!
//! The operators themselves are organized as an **open IR** ([`operator`]):
//! each one is a trait object bundling its functional executor, its naive
//! reference executor and its instrumented phase plan, registered in a
//! static registry the execution layers dispatch through. Beyond the
//! paper's four, the IR carries the multi-input and 1→N stage kinds that
//! complete Table 1 — `Union` (concatenating scan), `Cogroup`
//! (multi-input grouped join) and `FlatMap` (1→N expanding scan,
//! [`flat_map`]).
//!
//! The crate also encodes Table 1 (the Spark-operator → basic-operator
//! mapping, [`spark`]) and Table 2 (per-operator phase structure,
//! [`phases`]).

#![warn(missing_docs)]

pub mod agg;
pub mod flat_map;
pub mod groupby;
pub mod hash;
pub mod join;
pub mod operator;
pub mod partition;
pub mod phases;
pub mod reference;
pub mod scan;
pub mod sort;
pub mod spark;

mod opqueue;

pub use agg::Aggregates;
pub use hash::{mix64, PartitionScheme};
pub use operator::{operator, CostHints, OpInvocation, OpOutput, OpProfile, OpSpec, Operator};
pub use opqueue::ChainKernel;
pub use phases::{OperatorKind, PhaseInfo};
pub use scan::ScanPredicate;

use mondrian_workloads::Tuple;

/// Snapshot of tuple data shared between the functional layer and kernels.
///
/// A reference-counted slice: builders, stages and kernels pass relations
/// around by bumping a refcount instead of deep-cloning tuple vectors —
/// the pipeline's allocation diet depends on it.
pub type Data = std::sync::Arc<[Tuple]>;
