//! Small utilities shared by the instrumented kernels.

use std::collections::VecDeque;

use mondrian_cores::{Kernel, MicroOp};

/// A refillable micro-op queue: kernels push a batch of ops per unit of
/// work (tuple, SIMD group, merge step) and the core drains them one at a
/// time.
#[derive(Debug, Default)]
pub(crate) struct OpQueue {
    q: VecDeque<MicroOp>,
}

impl OpQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, op: MicroOp) {
        self.q.push_back(op);
    }

    pub fn pop(&mut self) -> Option<MicroOp> {
        self.q.pop_front()
    }

    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

/// Runs several kernels back to back as one (used e.g. for the CPU probe
/// phase, which processes thousands of cache-resident buckets in a row).
pub struct ChainKernel {
    parts: Vec<Box<dyn Kernel>>,
    idx: usize,
}

impl ChainKernel {
    /// Chains `parts` in order.
    pub fn new(parts: Vec<Box<dyn Kernel>>) -> Self {
        Self { parts, idx: 0 }
    }
}

impl Kernel for ChainKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        while self.idx < self.parts.len() {
            if let Some(op) = self.parts[self.idx].next_op() {
                return Some(op);
            }
            self.idx += 1;
        }
        None
    }

    fn name(&self) -> &'static str {
        "chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mondrian_cores::VecKernel;

    #[test]
    fn chain_runs_parts_in_order() {
        let a = VecKernel::new(vec![MicroOp::compute(1)]);
        let b = VecKernel::new(vec![MicroOp::compute(2), MicroOp::compute(3)]);
        let mut c = ChainKernel::new(vec![Box::new(a), Box::new(b)]);
        let mut seen = Vec::new();
        while let Some(op) = c.next_op() {
            seen.push(op);
        }
        assert_eq!(seen, vec![MicroOp::compute(1), MicroOp::compute(2), MicroOp::compute(3)]);
    }

    #[test]
    fn empty_chain_finishes_immediately() {
        let mut c = ChainKernel::new(vec![]);
        assert!(c.next_op().is_none());
    }
}
