//! The open operator IR.
//!
//! Every operator of the engine is a first-class trait object
//! ([`Operator`]) bundling three things:
//!
//! 1. a static **descriptor** ([`OpProfile`]): identity, display name,
//!    input arity, the Table 2 phase plan, and the dataset-shaping facts
//!    the experiment driver needs (range vs hash partitioning, group-key
//!    shrinking),
//! 2. a **functional executor** ([`Operator::execute`]): the real
//!    algorithm-family implementation over tuple data (radix grouping,
//!    bitonic + merge sort, index probe joins, ...), and
//! 3. a **naive reference executor** ([`Operator::reference`]): the
//!    ground truth every execution — functional, engine-simulated, serial
//!    or branch-concurrent — is verified byte-identically against.
//!
//! The operators live in a static [`REGISTRY`]; `core` and `pipeline`
//! dispatch through [`operator`] and descriptor fields instead of
//! matching on [`OperatorKind`], so adding a stage kind is a one-file
//! change: implement the trait, register the object.

use std::collections::BTreeMap;

use mondrian_workloads::Tuple;

use crate::agg::Aggregates;
use crate::flat_map::flat_map_expand;
use crate::join::{build_index, probe_index};
use crate::phases::{OperatorKind, PhaseInfo};
use crate::reference::{self, JoinRow};
use crate::scan::{scan_filter, ScanPredicate};
use crate::sort::{bitonic_runs, merge_pass, BITONIC_RUN};

/// Relative per-tuple work hints for the planner's cost model
/// ([`mondrian_pipeline::plan`]): abstract cycles per tuple for each
/// phase slot of the Table 2 plan. These are coarse algorithm-family
/// weights (a sort's local pass costs more per tuple than a scan's
/// predicate test), not calibrated hardware numbers — the planner only
/// needs the *ratios* to rank candidate schedules, and the executor's
/// measured makespans always win over the prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostHints {
    /// Cycles per input tuple of one partitioning round (histogram +
    /// scatter); charged twice (0 when the plan has no partition phase).
    pub partition_cycles: u32,
    /// Cycles per build-side tuple of the hash-table build phase (0 when
    /// the plan has none).
    pub build_cycles: u32,
    /// Cycles per input tuple of the operation phase (the local
    /// sort/probe/aggregate work).
    pub op_cycles: u32,
    /// Cycles per *output* tuple of materializing the result.
    pub output_cycles: u32,
}

/// Static descriptor of one operator: everything the execution layers
/// need to know about it without matching on its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpProfile {
    /// The operator's identity.
    pub kind: OperatorKind,
    /// Display name (the paper's figure label for the basic four).
    pub name: &'static str,
    /// Minimum number of input relations the operator consumes.
    pub min_inputs: usize,
    /// Maximum number of input relations (`usize::MAX` = unbounded).
    pub max_inputs: usize,
    /// The Table 2 phase plan.
    pub phases: PhaseInfo,
    /// Whether the partitioning phase splits by key *range* (high-order
    /// bits, Sort) instead of low-order hash bits.
    pub partitions_by_range: bool,
    /// Standalone dataset generation shrinks the key space by this
    /// divisor (grouping operators target the paper's average group size
    /// of four, §6; 1 everywhere else).
    pub group_key_divisor: u64,
    /// Whether the operator's output phase streams tuples as they are
    /// produced — the eligible *producer* side of intra-stage pipelining
    /// (the scan family: its single probe phase writes matches in input
    /// order, so a downstream partition phase can consume them chunk by
    /// chunk before the phase completes).
    pub streams_output: bool,
    /// Whether the operator's partition phase can consume its primary
    /// input chunk by chunk — the eligible *consumer* side of intra-stage
    /// pipelining (the partition-phase family: histogram + scatter rounds
    /// are incremental over arrival chunks).
    pub streams_input: bool,
    /// Relative per-tuple phase costs for the planner's cost model.
    pub cost: CostHints,
}

/// Parameters of one concrete operator invocation — the descriptor the
/// execution layers hand around instead of switching on [`OperatorKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSpec {
    /// Which operator runs.
    pub kind: OperatorKind,
    /// Scan-predicate override (`None` = the operator's default: the §6
    /// searched-value scan for Scan, match-all for FlatMap).
    pub pred: Option<ScanPredicate>,
    /// 1→N output amplification (FlatMap; 1 for every other operator).
    pub fanout: u64,
}

impl OpSpec {
    /// A default invocation of `kind`.
    pub fn new(kind: OperatorKind) -> Self {
        Self { kind, pred: None, fanout: 1 }
    }

    /// The registered operator this spec invokes.
    pub fn operator(&self) -> &'static dyn Operator {
        operator(self.kind)
    }
}

/// The relations one operator invocation consumes.
#[derive(Debug, Clone, Copy)]
pub struct OpInvocation<'a> {
    /// Input relations, in order. Single-input operators read
    /// `inputs[0]`; joins read the probe side S there.
    pub inputs: &'a [&'a [Tuple]],
    /// Join build side R (`None` = derive a primary-key dimension from
    /// the probe side's distinct keys).
    pub build: Option<&'a [Tuple]>,
    /// Seed for derived data (dimension payloads).
    pub seed: u64,
}

impl<'a> OpInvocation<'a> {
    /// The sole input of a single-input operator.
    ///
    /// # Panics
    ///
    /// Panics if the invocation does not carry exactly one input.
    pub fn single(&self) -> &'a [Tuple] {
        assert_eq!(self.inputs.len(), 1, "operator takes exactly one input relation");
        self.inputs[0]
    }
}

/// The functional output relation of one operator run, captured so that
/// pipeline stages can feed each other.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// Tuple relation (Scan: the matches in input order; Sort: the totally
    /// ordered relation; Union: the concatenation in input order).
    Tuples(Vec<Tuple>),
    /// 1→N scan output (FlatMap): the expanded relation together with the
    /// output-amplification factor it was produced under, so downstream
    /// accounting can attribute the amplified traffic.
    Expanded {
        /// The expanded relation, in input order.
        tuples: Vec<Tuple>,
        /// Output rows per matching input row.
        fanout: u64,
    },
    /// Group-by result: key → the six aggregates.
    Groups(BTreeMap<u64, Aggregates>),
    /// Cogroup result: key → the six aggregates of each input side.
    CoGroups(BTreeMap<u64, (Aggregates, Aggregates)>),
    /// Join result rows `(key, r_payload, s_payload)` in canonical order.
    Rows(Vec<JoinRow>),
}

impl OpOutput {
    /// Number of output rows/groups.
    pub fn rows(&self) -> usize {
        match self {
            OpOutput::Tuples(v) => v.len(),
            OpOutput::Expanded { tuples, .. } => tuples.len(),
            OpOutput::Groups(g) => g.len(),
            OpOutput::CoGroups(g) => g.len(),
            OpOutput::Rows(r) => r.len(),
        }
    }

    /// Whether the output is empty.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// The output-amplification factor the run carried (1 unless the
    /// operator models 1→N output).
    pub fn amplification(&self) -> u64 {
        match self {
            OpOutput::Expanded { fanout, .. } => *fanout,
            _ => 1,
        }
    }
}

/// One operator of the open IR. Implementations are stateless unit
/// structs registered in [`REGISTRY`].
pub trait Operator: Sync {
    /// The operator's static descriptor.
    fn profile(&self) -> OpProfile;

    /// The functional executor: the real algorithm-family implementation
    /// over tuple data. Its output must equal [`Operator::reference`] for
    /// every invocation.
    fn execute(&self, spec: &OpSpec, inv: &OpInvocation) -> OpOutput;

    /// The naive reference executor — ground truth for verification.
    fn reference(&self, spec: &OpSpec, inv: &OpInvocation) -> OpOutput;
}

/// The primary-key dimension a build-less join runs against: one tuple
/// per distinct probe key, payload a seeded deterministic hash.
pub fn derive_dimension(probe: &[Tuple], seed: u64) -> Vec<Tuple> {
    let keys: std::collections::BTreeSet<u64> = probe.iter().map(|t| t.key).collect();
    keys.into_iter().map(|k| Tuple::new(k, crate::mix64(k ^ seed))).collect()
}

/// Hash-table bits for roughly 2× occupancy over `entries`.
fn table_bits(entries: usize) -> u32 {
    (entries.max(2) * 2).next_power_of_two().trailing_zeros()
}

/// The effective predicate of a scan-backed invocation: the override, or
/// the paper's searched-value scan (key equality with the first key).
fn scan_pred(spec: &OpSpec, input: &[Tuple]) -> ScanPredicate {
    spec.pred.unwrap_or_else(|| ScanPredicate::KeyEquals(input.first().map_or(0, |t| t.key)))
}

struct ScanOp;

impl Operator for ScanOp {
    fn profile(&self) -> OpProfile {
        OpProfile {
            kind: OperatorKind::Scan,
            name: "Scan",
            min_inputs: 1,
            max_inputs: 1,
            phases: PhaseInfo {
                has_partitioning: false,
                histogram: None,
                distribution: None,
                hash_table_build: None,
                operation: "Scan keys",
            },
            partitions_by_range: false,
            group_key_divisor: 1,
            streams_output: true,
            streams_input: false,
            cost: CostHints {
                partition_cycles: 0,
                build_cycles: 0,
                op_cycles: 2,
                output_cycles: 1,
            },
        }
    }

    fn execute(&self, spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        let input = inv.single();
        OpOutput::Tuples(scan_filter(input, scan_pred(spec, input)))
    }

    fn reference(&self, spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        let input = inv.single();
        OpOutput::Tuples(reference::filtered(input, scan_pred(spec, input)))
    }
}

struct SortOp;

impl Operator for SortOp {
    fn profile(&self) -> OpProfile {
        OpProfile {
            kind: OperatorKind::Sort,
            name: "Sort",
            min_inputs: 1,
            max_inputs: 1,
            phases: PhaseInfo {
                has_partitioning: true,
                histogram: Some("Hash keys with high order bits"),
                distribution: Some("Copy to partitions"),
                hash_table_build: None,
                operation: "Local sort",
            },
            partitions_by_range: true,
            group_key_divisor: 1,
            streams_output: false,
            streams_input: true,
            cost: CostHints {
                partition_cycles: 3,
                build_cycles: 0,
                op_cycles: 12,
                output_cycles: 1,
            },
        }
    }

    fn execute(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        // The NMP family's functional sort: bitonic first pass, then
        // doubling merge passes — a genuinely different code path from
        // the reference's comparison sort.
        let mut v = bitonic_runs(inv.single(), BITONIC_RUN);
        let mut run = BITONIC_RUN;
        while run < v.len().max(1) {
            v = merge_pass(&v, run);
            run *= 2;
        }
        OpOutput::Tuples(v)
    }

    fn reference(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        OpOutput::Tuples(reference::sorted(inv.single()))
    }
}

struct GroupByOp;

impl Operator for GroupByOp {
    fn profile(&self) -> OpProfile {
        OpProfile {
            kind: OperatorKind::GroupBy,
            name: "Group by",
            min_inputs: 1,
            max_inputs: 1,
            phases: PhaseInfo {
                has_partitioning: true,
                histogram: Some("Hash keys with low order bits"),
                distribution: Some("Copy to partitions"),
                hash_table_build: Some("Hash keys & reorder"),
                operation: "Group by key",
            },
            partitions_by_range: false,
            group_key_divisor: 4,
            streams_output: false,
            streams_input: true,
            cost: CostHints {
                partition_cycles: 3,
                build_cycles: 6,
                op_cycles: 4,
                output_cycles: 1,
            },
        }
    }

    fn execute(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        let input = inv.single();
        OpOutput::Groups(crate::groupby::hash_group(input, table_bits(input.len())))
    }

    fn reference(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        OpOutput::Groups(reference::grouped(inv.single()))
    }
}

struct JoinOp;

impl JoinOp {
    /// The build side: the invocation's, or the derived PK dimension.
    fn build<'a>(inv: &OpInvocation<'a>, derived: &'a mut Vec<Tuple>) -> &'a [Tuple] {
        match inv.build {
            Some(r) => r,
            None => {
                *derived = derive_dimension(inv.inputs[0], inv.seed);
                derived
            }
        }
    }
}

impl Operator for JoinOp {
    fn profile(&self) -> OpProfile {
        OpProfile {
            kind: OperatorKind::Join,
            name: "Join",
            min_inputs: 1,
            max_inputs: 1,
            phases: PhaseInfo {
                has_partitioning: true,
                histogram: Some("Hash keys with low order bits"),
                distribution: Some("Copy to partitions"),
                hash_table_build: Some("Hash keys & reorder"),
                operation: "Join by key",
            },
            partitions_by_range: false,
            group_key_divisor: 1,
            streams_output: false,
            streams_input: true,
            cost: CostHints {
                partition_cycles: 3,
                build_cycles: 8,
                op_cycles: 6,
                output_cycles: 2,
            },
        }
    }

    fn execute(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        let s = inv.single();
        let mut derived = Vec::new();
        let r = Self::build(inv, &mut derived);
        let idx = build_index(r, table_bits(r.len()));
        OpOutput::Rows(reference::canonical(probe_index(&idx, s)))
    }

    fn reference(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        let s = inv.single();
        let mut derived = Vec::new();
        let r = Self::build(inv, &mut derived);
        let mut by_key: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for t in r {
            by_key.entry(t.key).or_default().push(t.payload);
        }
        let mut rows: Vec<JoinRow> = Vec::new();
        for st in s {
            if let Some(payloads) = by_key.get(&st.key) {
                rows.extend(payloads.iter().map(|&rp| (st.key, rp, st.payload)));
            }
        }
        OpOutput::Rows(reference::canonical(rows))
    }
}

struct UnionOp;

impl Operator for UnionOp {
    fn profile(&self) -> OpProfile {
        OpProfile {
            kind: OperatorKind::Union,
            name: "Union",
            min_inputs: 2,
            max_inputs: usize::MAX,
            phases: PhaseInfo {
                has_partitioning: false,
                histogram: None,
                distribution: None,
                hash_table_build: None,
                operation: "Concatenating scan",
            },
            partitions_by_range: false,
            group_key_divisor: 1,
            streams_output: true,
            streams_input: false,
            cost: CostHints {
                partition_cycles: 0,
                build_cycles: 0,
                op_cycles: 1,
                output_cycles: 1,
            },
        }
    }

    fn execute(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        let total = inv.inputs.iter().map(|r| r.len()).sum();
        let mut out = Vec::with_capacity(total);
        for rel in inv.inputs {
            out.extend_from_slice(rel);
        }
        OpOutput::Tuples(out)
    }

    fn reference(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        OpOutput::Tuples(reference::unioned(inv.inputs))
    }
}

struct CogroupOp;

impl Operator for CogroupOp {
    fn profile(&self) -> OpProfile {
        OpProfile {
            kind: OperatorKind::Cogroup,
            name: "Cogroup",
            min_inputs: 2,
            max_inputs: 2,
            phases: PhaseInfo {
                has_partitioning: true,
                histogram: Some("Hash keys with low order bits"),
                distribution: Some("Copy to partitions"),
                hash_table_build: Some("Hash keys & reorder"),
                operation: "Cogroup by key",
            },
            partitions_by_range: false,
            group_key_divisor: 4,
            streams_output: false,
            streams_input: true,
            cost: CostHints {
                partition_cycles: 3,
                build_cycles: 8,
                op_cycles: 5,
                output_cycles: 1,
            },
        }
    }

    fn execute(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        assert_eq!(inv.inputs.len(), 2, "cogroup takes exactly two input relations");
        let (a, b) = (inv.inputs[0], inv.inputs[1]);
        let mut out: BTreeMap<u64, (Aggregates, Aggregates)> = BTreeMap::new();
        for (k, agg) in crate::groupby::hash_group(a, table_bits(a.len())) {
            out.entry(k).or_default().0.merge(&agg);
        }
        for (k, agg) in crate::groupby::hash_group(b, table_bits(b.len())) {
            out.entry(k).or_default().1.merge(&agg);
        }
        OpOutput::CoGroups(out)
    }

    fn reference(&self, _spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        assert_eq!(inv.inputs.len(), 2, "cogroup takes exactly two input relations");
        OpOutput::CoGroups(reference::cogrouped(inv.inputs[0], inv.inputs[1]))
    }
}

struct FlatMapOp;

impl Operator for FlatMapOp {
    fn profile(&self) -> OpProfile {
        OpProfile {
            kind: OperatorKind::FlatMap,
            name: "Flat map",
            min_inputs: 1,
            max_inputs: 1,
            phases: PhaseInfo {
                has_partitioning: false,
                histogram: None,
                distribution: None,
                hash_table_build: None,
                operation: "Scan & expand 1→N",
            },
            partitions_by_range: false,
            group_key_divisor: 1,
            streams_output: true,
            streams_input: false,
            cost: CostHints {
                partition_cycles: 0,
                build_cycles: 0,
                op_cycles: 2,
                output_cycles: 1,
            },
        }
    }

    fn execute(&self, spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        let pred = spec.pred.unwrap_or(ScanPredicate::All);
        let fanout = spec.fanout.max(1);
        OpOutput::Expanded { tuples: flat_map_expand(inv.single(), pred, fanout), fanout }
    }

    fn reference(&self, spec: &OpSpec, inv: &OpInvocation) -> OpOutput {
        let pred = spec.pred.unwrap_or(ScanPredicate::All);
        let fanout = spec.fanout.max(1);
        OpOutput::Expanded { tuples: reference::flat_mapped(inv.single(), pred, fanout), fanout }
    }
}

/// Every registered operator, in [`OperatorKind::ALL`] order.
pub static REGISTRY: [&dyn Operator; 7] =
    [&ScanOp, &SortOp, &GroupByOp, &JoinOp, &UnionOp, &CogroupOp, &FlatMapOp];

/// Looks an operator up in the registry.
///
/// # Panics
///
/// Panics if `kind` has no registered operator — a registration bug, not
/// a user error.
pub fn operator(kind: OperatorKind) -> &'static dyn Operator {
    REGISTRY
        .iter()
        .copied()
        .find(|op| op.profile().kind == kind)
        .unwrap_or_else(|| panic!("no operator registered for {kind:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv<'a>(inputs: &'a [&'a [Tuple]]) -> OpInvocation<'a> {
        OpInvocation { inputs, build: None, seed: 7 }
    }

    #[test]
    fn registry_covers_every_kind_in_order() {
        for (kind, op) in OperatorKind::ALL.into_iter().zip(REGISTRY) {
            assert_eq!(op.profile().kind, kind, "registry order matches OperatorKind::ALL");
            assert_eq!(operator(kind).profile().kind, kind);
        }
    }

    #[test]
    fn every_operator_execute_matches_reference() {
        let a: Vec<Tuple> = (0..200).map(|i| Tuple::new(i % 13, i * 3 + 1)).collect();
        let b: Vec<Tuple> = (0..150).map(|i| Tuple::new(i % 7, i)).collect();
        for kind in OperatorKind::ALL {
            let op = operator(kind);
            let profile = op.profile();
            let inputs: Vec<&[Tuple]> = (0..profile.min_inputs.max(1))
                .map(|i| if i % 2 == 0 { &a[..] } else { &b[..] })
                .collect();
            let spec = OpSpec { fanout: 3, ..OpSpec::new(kind) };
            let invocation = inv(&inputs);
            assert_eq!(
                op.execute(&spec, &invocation),
                op.reference(&spec, &invocation),
                "{kind:?} functional executor diverged from its reference"
            );
        }
    }

    #[test]
    fn arity_descriptors_separate_the_families() {
        assert_eq!(operator(OperatorKind::Scan).profile().max_inputs, 1);
        assert_eq!(operator(OperatorKind::Union).profile().min_inputs, 2);
        assert_eq!(operator(OperatorKind::Union).profile().max_inputs, usize::MAX);
        let cg = operator(OperatorKind::Cogroup).profile();
        assert_eq!((cg.min_inputs, cg.max_inputs), (2, 2));
        assert!(operator(OperatorKind::Sort).profile().partitions_by_range);
        assert_eq!(operator(OperatorKind::Cogroup).profile().group_key_divisor, 4);
    }

    #[test]
    fn streamable_facts_partition_the_registry() {
        // Intra-stage pipelining splits the registry cleanly: the scan
        // family streams its output, the partition-phase family streams
        // its primary input, and no operator does both.
        for kind in OperatorKind::ALL {
            let p = operator(kind).profile();
            assert!(!(p.streams_output && p.streams_input), "{kind:?} cannot be both sides");
            assert_eq!(
                p.streams_input, p.phases.has_partitioning,
                "{kind:?}: streamed consumption is the partition phase's property"
            );
        }
        let producers: Vec<_> = OperatorKind::ALL
            .into_iter()
            .filter(|&k| operator(k).profile().streams_output)
            .collect();
        assert_eq!(producers, vec![OperatorKind::Scan, OperatorKind::Union, OperatorKind::FlatMap],);
    }

    #[test]
    fn cost_hints_follow_the_phase_plans() {
        // The planner charges partition/build cycles only when the Table 2
        // plan has those phases; every operator does *some* per-tuple work.
        for kind in OperatorKind::ALL {
            let p = operator(kind).profile();
            assert_eq!(
                p.cost.partition_cycles > 0,
                p.phases.has_partitioning,
                "{kind:?}: partition cost iff a partition phase exists"
            );
            assert_eq!(
                p.cost.build_cycles > 0,
                p.phases.hash_table_build.is_some(),
                "{kind:?}: build cost iff a build phase exists"
            );
            assert!(p.cost.op_cycles > 0 && p.cost.output_cycles > 0);
        }
        // Ratios the model leans on: a sort's local pass outweighs a scan.
        let sort = operator(OperatorKind::Sort).profile().cost;
        let scan = operator(OperatorKind::Scan).profile().cost;
        assert!(sort.op_cycles > scan.op_cycles);
    }

    #[test]
    fn flat_map_output_carries_amplification() {
        let rel: Vec<Tuple> = (0..10).map(|i| Tuple::new(i, i)).collect();
        let spec = OpSpec { fanout: 4, ..OpSpec::new(OperatorKind::FlatMap) };
        let out = operator(OperatorKind::FlatMap).execute(&spec, &inv(&[&rel]));
        assert_eq!(out.rows(), 40);
        assert_eq!(out.amplification(), 4);
        assert_eq!(OpOutput::Tuples(rel).amplification(), 1);
    }

    #[test]
    fn derived_dimension_is_deterministic_and_primary_key() {
        let rel = vec![Tuple::new(4, 0), Tuple::new(1, 0), Tuple::new(4, 9)];
        let a = derive_dimension(&rel, 7);
        assert_eq!(a, derive_dimension(&rel, 7));
        assert_eq!(a.len(), 2, "distinct keys only");
        assert!(a.windows(2).all(|w| w[0].key < w[1].key));
        assert_ne!(derive_dimension(&rel, 8), a, "seed changes payloads");
    }
}
