//! Operator identity and phase structure (Table 2 of the paper).
//!
//! [`OperatorKind`] names the operators of the open operator IR; the
//! per-operator facts (display name, arity, phase plan) live with each
//! operator's [`crate::operator::Operator`] implementation and are reached
//! through the registry, not through `match` arms scattered over the
//! execution layers.

/// The basic data operators of the open operator IR: the paper's four
/// (§2, Table 1) plus the multi-input and 1→N stage kinds that complete
/// the Table 1 workload surface (`Union`, `Cogroup`, `FlatMap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Sequentially scan for a key.
    Scan,
    /// R ⋈ S equi-join on a foreign key.
    Join,
    /// Group tuples by key and aggregate.
    GroupBy,
    /// Totally order the dataset.
    Sort,
    /// Concatenate N input relations (a multi-input scan).
    Union,
    /// Group two relations by key and pair the groups (a multi-input
    /// grouped join on the partition/probe machinery).
    Cogroup,
    /// Expand every tuple into `fanout` output tuples (a 1→N scan).
    FlatMap,
}

impl OperatorKind {
    /// The paper's four basic operators, in its presentation order.
    pub const BASIC: [OperatorKind; 4] =
        [OperatorKind::Scan, OperatorKind::Sort, OperatorKind::GroupBy, OperatorKind::Join];

    /// Every operator of the IR: the paper's four, then the opened stage
    /// kinds.
    pub const ALL: [OperatorKind; 7] = [
        OperatorKind::Scan,
        OperatorKind::Sort,
        OperatorKind::GroupBy,
        OperatorKind::Join,
        OperatorKind::Union,
        OperatorKind::Cogroup,
        OperatorKind::FlatMap,
    ];

    /// Display name (the paper's figure label for the basic four).
    pub fn name(&self) -> &'static str {
        crate::operator::operator(*self).profile().name
    }
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Phase decomposition of one operator — a row of Table 2 (extended with
/// the new stage kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseInfo {
    /// Whether the operator has a partitioning phase at all.
    pub has_partitioning: bool,
    /// Histogram-build step description (partitioning phase, step 1).
    pub histogram: Option<&'static str>,
    /// Data-distribution step description (partitioning phase, step 2).
    pub distribution: Option<&'static str>,
    /// Hash-table build step of the probe phase, if any.
    pub hash_table_build: Option<&'static str>,
    /// The probe-phase operation.
    pub operation: &'static str,
}

impl PhaseInfo {
    /// The operator's phase plan, read from its registered descriptor.
    pub fn of(op: OperatorKind) -> Self {
        crate::operator::operator(op).profile().phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_scan_has_no_partitioning() {
        let p = PhaseInfo::of(OperatorKind::Scan);
        assert!(!p.has_partitioning);
        assert_eq!(p.operation, "Scan keys");
    }

    #[test]
    fn table2_join_groupby_share_partitioning() {
        let j = PhaseInfo::of(OperatorKind::Join);
        let g = PhaseInfo::of(OperatorKind::GroupBy);
        assert_eq!(j.histogram, g.histogram);
        assert_eq!(j.hash_table_build, g.hash_table_build);
        assert_ne!(j.operation, g.operation);
    }

    #[test]
    fn table2_sort_uses_high_order_bits_no_hash_table() {
        let s = PhaseInfo::of(OperatorKind::Sort);
        assert_eq!(s.histogram, Some("Hash keys with high order bits"));
        assert_eq!(s.hash_table_build, None);
        assert_eq!(s.operation, "Local sort");
    }

    #[test]
    fn new_stage_kinds_have_phase_plans() {
        assert!(!PhaseInfo::of(OperatorKind::Union).has_partitioning);
        assert!(!PhaseInfo::of(OperatorKind::FlatMap).has_partitioning);
        let c = PhaseInfo::of(OperatorKind::Cogroup);
        assert!(c.has_partitioning, "cogroup shuffles both sides");
        assert_eq!(c.histogram, PhaseInfo::of(OperatorKind::GroupBy).histogram);
    }

    #[test]
    fn operator_names_match_paper() {
        assert_eq!(OperatorKind::GroupBy.to_string(), "Group by");
        assert_eq!(OperatorKind::BASIC.len(), 4);
        assert_eq!(OperatorKind::ALL.len(), 7);
        assert_eq!(OperatorKind::Union.to_string(), "Union");
        assert_eq!(OperatorKind::FlatMap.to_string(), "Flat map");
    }
}
