//! Operator phase structure (Table 2 of the paper).

/// The four basic data operators (§2, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Sequentially scan for a key.
    Scan,
    /// R ⋈ S equi-join on a foreign key.
    Join,
    /// Group tuples by key and aggregate.
    GroupBy,
    /// Totally order the dataset.
    Sort,
}

impl OperatorKind {
    /// All four operators, in the paper's presentation order.
    pub const ALL: [OperatorKind; 4] =
        [OperatorKind::Scan, OperatorKind::Sort, OperatorKind::GroupBy, OperatorKind::Join];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::Scan => "Scan",
            OperatorKind::Join => "Join",
            OperatorKind::GroupBy => "Group by",
            OperatorKind::Sort => "Sort",
        }
    }
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Phase decomposition of one operator — a row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseInfo {
    /// Whether the operator has a partitioning phase at all.
    pub has_partitioning: bool,
    /// Histogram-build step description (partitioning phase, step 1).
    pub histogram: Option<&'static str>,
    /// Data-distribution step description (partitioning phase, step 2).
    pub distribution: Option<&'static str>,
    /// Hash-table build step of the probe phase, if any.
    pub hash_table_build: Option<&'static str>,
    /// The probe-phase operation.
    pub operation: &'static str,
}

impl PhaseInfo {
    /// Table 2, by operator.
    pub fn of(op: OperatorKind) -> Self {
        match op {
            OperatorKind::Scan => Self {
                has_partitioning: false,
                histogram: None,
                distribution: None,
                hash_table_build: None,
                operation: "Scan keys",
            },
            OperatorKind::Join => Self {
                has_partitioning: true,
                histogram: Some("Hash keys with low order bits"),
                distribution: Some("Copy to partitions"),
                hash_table_build: Some("Hash keys & reorder"),
                operation: "Join by key",
            },
            OperatorKind::GroupBy => Self {
                has_partitioning: true,
                histogram: Some("Hash keys with low order bits"),
                distribution: Some("Copy to partitions"),
                hash_table_build: Some("Hash keys & reorder"),
                operation: "Group by key",
            },
            OperatorKind::Sort => Self {
                has_partitioning: true,
                histogram: Some("Hash keys with high order bits"),
                distribution: Some("Copy to partitions"),
                hash_table_build: None,
                operation: "Local sort",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_scan_has_no_partitioning() {
        let p = PhaseInfo::of(OperatorKind::Scan);
        assert!(!p.has_partitioning);
        assert_eq!(p.operation, "Scan keys");
    }

    #[test]
    fn table2_join_groupby_share_partitioning() {
        let j = PhaseInfo::of(OperatorKind::Join);
        let g = PhaseInfo::of(OperatorKind::GroupBy);
        assert_eq!(j.histogram, g.histogram);
        assert_eq!(j.hash_table_build, g.hash_table_build);
        assert_ne!(j.operation, g.operation);
    }

    #[test]
    fn table2_sort_uses_high_order_bits_no_hash_table() {
        let s = PhaseInfo::of(OperatorKind::Sort);
        assert_eq!(s.histogram, Some("Hash keys with high order bits"));
        assert_eq!(s.hash_table_build, None);
        assert_eq!(s.operation, "Local sort");
    }

    #[test]
    fn operator_names_match_paper() {
        assert_eq!(OperatorKind::GroupBy.to_string(), "Group by");
        assert_eq!(OperatorKind::ALL.len(), 4);
    }
}
