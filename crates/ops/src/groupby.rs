//! The Group-by operator's probe phase.
//!
//! §6: the probe applies six aggregation functions (avg, count, min, max,
//! sum, sum squared) to every tuple group; the modeled query has an average
//! group size of four tuples. The CPU and NMP-rand use a hash table of
//! groups (dependent random updates); Mondrian and NMP-seq sort first and
//! aggregate in one sequential pass.

use std::collections::BTreeMap;

use mondrian_cores::{Dep, Kernel, MicroOp, StoreKind};
use mondrian_workloads::{Tuple, TUPLE_BYTES};

use crate::agg::Aggregates;
use crate::hash::mix64;
use crate::opqueue::OpQueue;
use crate::Data;

/// Bytes of one group entry in the aggregation hash table (key + five
/// accumulators, padded to a cache line).
pub const GROUP_ENTRY_BYTES: u32 = 64;

/// An open-addressing (linear-probing) table of group aggregates, sized at
/// `2^bits` slots. Also replays per-tuple probe sequences for the kernel.
#[derive(Debug, Clone)]
pub struct GroupTable {
    bits: u32,
    keys: Vec<Option<u64>>,
    aggs: Vec<Aggregates>,
}

impl GroupTable {
    /// Creates an empty table with `2^bits` slots.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or absurdly large (> 32).
    pub fn new(bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "unreasonable table size");
        Self { bits, keys: vec![None; 1 << bits], aggs: vec![Aggregates::new(); 1 << bits] }
    }

    fn mask(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Folds `t` into its group; returns `(slot, probes)` — the slot
    /// updated and how many probe steps the lookup took.
    ///
    /// # Panics
    ///
    /// Panics if the table is full (the engine sizes tables at 2×
    /// occupancy).
    pub fn update(&mut self, t: &Tuple) -> (usize, u32) {
        let mut slot = (mix64(t.key) & self.mask()) as usize;
        let mut probes = 1;
        loop {
            match self.keys[slot] {
                Some(k) if k == t.key => break,
                None => {
                    self.keys[slot] = Some(t.key);
                    break;
                }
                Some(_) => {
                    slot = (slot + 1) & self.mask() as usize;
                    probes += 1;
                    assert!(probes as usize <= self.keys.len(), "group table full");
                }
            }
        }
        self.aggs[slot].update(t);
        (slot, probes)
    }

    /// Extracts the grouped aggregates, keyed and ordered by group key.
    pub fn into_groups(self) -> BTreeMap<u64, Aggregates> {
        self.keys.into_iter().zip(self.aggs).filter_map(|(k, a)| k.map(|k| (k, a))).collect()
    }
}

/// Functional hash aggregation.
pub fn hash_group(data: &[Tuple], bits: u32) -> BTreeMap<u64, Aggregates> {
    let mut table = GroupTable::new(bits);
    for t in data {
        table.update(t);
    }
    table.into_groups()
}

/// Functional sorted aggregation: one pass over sorted data.
///
/// # Panics
///
/// Debug-asserts that the input is sorted.
pub fn sorted_group(data: &[Tuple]) -> Vec<(u64, Aggregates)> {
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let mut out: Vec<(u64, Aggregates)> = Vec::new();
    for t in data {
        match out.last_mut() {
            Some((k, a)) if *k == t.key => a.update(t),
            _ => {
                let mut a = Aggregates::new();
                a.update(t);
                out.push((t.key, a));
            }
        }
    }
    out
}

/// Hash-aggregation kernel (CPU, NMP-rand): per tuple, a sequential load,
/// the key hash, one **dependent** random table access per probe step, six
/// aggregate updates and a dirty store back.
pub struct HashAggKernel {
    data: Data,
    base: u64,
    table_base: u64,
    table: GroupTable,
    i: usize,
    q: OpQueue,
}

impl HashAggKernel {
    /// Aggregates `data` (at `base`) into the table at `table_base` with
    /// `2^bits` 64 B entries.
    pub fn new(data: Data, base: u64, table_base: u64, bits: u32) -> Self {
        Self { data, base, table_base, table: GroupTable::new(bits), i: 0, q: OpQueue::new() }
    }
}

impl Kernel for HashAggKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let t = self.data[self.i];
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            // Loop-carried dependence through the probe-exit branch, as in
            // the hash join (the table walk squashes run-ahead).
            self.q.push(MicroOp::load_dep(addr, TUPLE_BYTES));
            self.q.push(MicroOp::compute_dep(6));
            let (slot, probes) = self.table.update(&t);
            // Probe chain: each step's address depends on the previous
            // compare.
            let first = (slot as u64).wrapping_sub((probes - 1) as u64)
                & ((self.table.keys.len() - 1) as u64);
            for p in 0..probes {
                let s = (first + p as u64) & ((self.table.keys.len() - 1) as u64);
                let entry = self.table_base + s * GROUP_ENTRY_BYTES as u64;
                self.q.push(MicroOp::load_dep(entry, GROUP_ENTRY_BYTES));
                self.q.push(MicroOp::compute_dep(2));
            }
            // Six aggregate updates + write-back of the entry.
            self.q.push(MicroOp::compute_dep(8));
            let entry = self.table_base + slot as u64 * GROUP_ENTRY_BYTES as u64;
            self.q.push(MicroOp::store(entry, GROUP_ENTRY_BYTES));
            self.i += 1;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "groupby.hash"
    }
}

/// Scalar sorted-aggregation kernel (NMP-seq, after sorting): sequential
/// loads, a dependent compare + six updates per tuple, one store per group
/// boundary.
pub struct SortedAggKernel {
    data: Data,
    base: u64,
    out_base: u64,
    i: usize,
    groups: u64,
    q: OpQueue,
}

impl SortedAggKernel {
    /// Aggregates sorted `data` (at `base`), writing group results to
    /// `out_base`.
    pub fn new(data: Data, base: u64, out_base: u64) -> Self {
        Self { data, base, out_base, i: 0, groups: 0, q: OpQueue::new() }
    }
}

impl Kernel for SortedAggKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            self.q.push(MicroOp::load(addr, TUPLE_BYTES));
            self.q.push(MicroOp::compute_dep(8));
            let boundary =
                self.i + 1 == self.data.len() || self.data[self.i + 1].key != self.data[self.i].key;
            if boundary {
                let out = self.out_base + self.groups * GROUP_ENTRY_BYTES as u64;
                self.q.push(MicroOp::Store {
                    addr: out,
                    bytes: GROUP_ENTRY_BYTES,
                    kind: StoreKind::Streaming,
                });
                self.groups += 1;
            }
            self.i += 1;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "groupby.sorted.scalar"
    }
}

/// SIMD sorted-aggregation kernel (Mondrian): eight tuples stream in per
/// round; six SIMD ops apply all aggregate functions; group results stream
/// out at real group boundaries.
pub struct SimdSortedAggKernel {
    data: Data,
    base: u64,
    out_base: u64,
    i: usize,
    groups: u64,
    configured: bool,
    q: OpQueue,
}

impl SimdSortedAggKernel {
    /// See [`SortedAggKernel::new`].
    pub fn new(data: Data, base: u64, out_base: u64) -> Self {
        Self { data, base, out_base, i: 0, groups: 0, configured: false, q: OpQueue::new() }
    }
}

impl Kernel for SimdSortedAggKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if !self.configured {
            self.configured = true;
            return Some(MicroOp::ConfigStream {
                buf: 0,
                base: self.base,
                len: self.data.len() as u64 * TUPLE_BYTES as u64,
            });
        }
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let group = (self.data.len() - self.i).min(8);
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            self.q.push(MicroOp::stream_load(0, addr, group as u32 * TUPLE_BYTES));
            // The six aggregation functions, each one SIMD op over 8 tuples.
            for _ in 0..6 {
                self.q.push(MicroOp::Simd { dep: Dep::OnPrevLoad });
            }
            for k in 0..group {
                let idx = self.i + k;
                let boundary =
                    idx + 1 == self.data.len() || self.data[idx + 1].key != self.data[idx].key;
                if boundary {
                    let out = self.out_base + self.groups * GROUP_ENTRY_BYTES as u64;
                    self.q.push(MicroOp::Store {
                        addr: out,
                        bytes: GROUP_ENTRY_BYTES,
                        kind: StoreKind::Streaming,
                    });
                    self.groups += 1;
                }
            }
            self.i += group;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "groupby.sorted.simd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use mondrian_workloads::grouped_relation;

    #[test]
    fn hash_group_matches_reference() {
        let data = grouped_relation(1024, 256, 7);
        let got = hash_group(&data, 10);
        let want = reference::grouped(&data);
        assert_eq!(got, want);
    }

    #[test]
    fn sorted_group_matches_reference() {
        let data = reference::sorted(&grouped_relation(1024, 256, 8));
        let got: BTreeMap<u64, Aggregates> = sorted_group(&data).into_iter().collect();
        assert_eq!(got, reference::grouped(&data));
    }

    #[test]
    fn group_table_counts_probes() {
        let mut t = GroupTable::new(4);
        let (s1, p1) = t.update(&Tuple::new(1, 10));
        assert_eq!(p1, 1, "empty table: first probe wins");
        let (s2, p2) = t.update(&Tuple::new(1, 20));
        assert_eq!((s1, p1), (s2, p2), "same key, same slot");
        assert_eq!(t.into_groups()[&1].sum, 30);
    }

    #[test]
    #[should_panic(expected = "group table full")]
    fn full_table_panics() {
        let mut t = GroupTable::new(1);
        t.update(&Tuple::new(1, 0));
        t.update(&Tuple::new(2, 0));
        t.update(&Tuple::new(3, 0));
    }

    #[test]
    fn hash_agg_kernel_has_dependent_probes() {
        let data: crate::Data = grouped_relation(128, 32, 9).into();
        let mut k = HashAggKernel::new(data.clone(), 0, 1 << 20, 7);
        let ops: Vec<MicroOp> = std::iter::from_fn(|| k.next_op()).collect();
        let dep_loads =
            ops.iter().filter(|o| matches!(o, MicroOp::Load { dep: Dep::OnPrevLoad, .. })).count();
        assert!(dep_loads >= 128, "at least one dependent table access per tuple");
        let stores = ops.iter().filter(|o| matches!(o, MicroOp::Store { .. })).count();
        assert_eq!(stores, 128, "one write-back per tuple");
    }

    #[test]
    fn sorted_agg_kernel_stores_once_per_group() {
        let data: crate::Data = reference::sorted(&grouped_relation(256, 64, 10)).into();
        let n_groups = reference::grouped(&data).len();
        let mut k = SortedAggKernel::new(data.clone(), 0, 1 << 20);
        let ops: Vec<MicroOp> = std::iter::from_fn(|| k.next_op()).collect();
        let stores = ops.iter().filter(|o| matches!(o, MicroOp::Store { .. })).count();
        assert_eq!(stores, n_groups);
    }

    #[test]
    fn simd_sorted_agg_kernel_six_ops_per_group_of_8() {
        let data: crate::Data = reference::sorted(&grouped_relation(64, 16, 11)).into();
        let mut k = SimdSortedAggKernel::new(data.clone(), 0, 1 << 20);
        let ops: Vec<MicroOp> = std::iter::from_fn(|| k.next_op()).collect();
        let simds = ops.iter().filter(|o| matches!(o, MicroOp::Simd { .. })).count();
        assert_eq!(simds, 6 * 8, "6 aggregate ops per 8-tuple round");
        let stores = ops.iter().filter(|o| matches!(o, MicroOp::Store { .. })).count();
        assert_eq!(stores, reference::grouped(&data).len());
    }
}
