//! The Scan operator.
//!
//! "The last and simplest operator, scan, does not have a data partitioning
//! phase; each input data partition is scanned in parallel, and each tuple
//! is compared to the searched value." (§6)

use mondrian_cores::{Dep, Kernel, MicroOp, StoreKind};
use mondrian_workloads::{Tuple, TUPLE_BYTES};

use crate::opqueue::OpQueue;
use crate::Data;

/// The predicate evaluated per tuple by the Scan operator.
///
/// The paper's evaluation scans for one searched value
/// ([`ScanPredicate::KeyEquals`], §6); the other variants let Scan carry
/// the Table 1 transformations that lower onto it (`Filter`, `Map`,
/// `MapValues`, ...) when Scan runs as a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPredicate {
    /// Tuples whose key equals the searched value (§6's scan).
    KeyEquals(u64),
    /// Tuples whose key is strictly below the bound (range filter).
    KeyBelow(u64),
    /// Tuples whose payload is **not** congruent to `remainder` modulo
    /// `modulus` (a selective `Filter`). Congruence mod 0 is equality, so
    /// `modulus = 0` keeps every tuple whose payload differs from
    /// `remainder`.
    PayloadModNot {
        /// The modulus (0 degenerates to payload inequality).
        modulus: u64,
        /// The dropped remainder class.
        remainder: u64,
    },
    /// Every tuple matches (full-relation pass, e.g. `Map`).
    All,
}

impl ScanPredicate {
    /// Evaluates the predicate on one tuple.
    pub fn matches(&self, t: &Tuple) -> bool {
        match *self {
            ScanPredicate::KeyEquals(needle) => t.key == needle,
            ScanPredicate::KeyBelow(bound) => t.key < bound,
            ScanPredicate::PayloadModNot { modulus: 0, remainder } => t.payload != remainder,
            ScanPredicate::PayloadModNot { modulus, remainder } => t.payload % modulus != remainder,
            ScanPredicate::All => true,
        }
    }
}

/// Functional scan: all tuples whose key equals `needle`.
pub fn scan_matches(data: &[Tuple], needle: u64) -> Vec<Tuple> {
    scan_filter(data, ScanPredicate::KeyEquals(needle))
}

/// Functional scan under an arbitrary [`ScanPredicate`].
pub fn scan_filter(data: &[Tuple], pred: ScanPredicate) -> Vec<Tuple> {
    data.iter().copied().filter(|t| pred.matches(t)).collect()
}

/// Scalar scan kernel (CPU and NMP baselines): one 16 B load plus ~5
/// dependent compare/branch instructions per tuple.
pub struct ScalarScanKernel {
    data: Data,
    base: u64,
    out_base: u64,
    pred: ScanPredicate,
    store_kind: StoreKind,
    i: usize,
    matches: u64,
    q: OpQueue,
}

impl ScalarScanKernel {
    /// Scans `data` (resident at `base`) for tuples matching `pred`,
    /// writing matches to `out_base`.
    pub fn new(
        data: Data,
        base: u64,
        out_base: u64,
        pred: ScanPredicate,
        store_kind: StoreKind,
    ) -> Self {
        Self { data, base, out_base, pred, store_kind, i: 0, matches: 0, q: OpQueue::new() }
    }
}

impl Kernel for ScalarScanKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let t = self.data[self.i];
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            self.q.push(MicroOp::load(addr, TUPLE_BYTES));
            self.q.push(MicroOp::compute_dep(5));
            if self.pred.matches(&t) {
                let out = self.out_base + self.matches * TUPLE_BYTES as u64;
                self.q.push(MicroOp::Store {
                    addr: out,
                    bytes: TUPLE_BYTES,
                    kind: self.store_kind,
                });
                self.matches += 1;
            }
            self.i += 1;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "scan.scalar"
    }
}

/// SIMD streaming scan kernel (Mondrian): tuples arrive through stream
/// buffer 0 in 128 B groups; one 1024-bit SIMD compare covers 8 tuples.
pub struct SimdScanKernel {
    data: Data,
    base: u64,
    out_base: u64,
    pred: ScanPredicate,
    i: usize,
    matches: u64,
    configured: bool,
    q: OpQueue,
}

impl SimdScanKernel {
    /// Streaming scan of `data` at `base` for tuples matching `pred`.
    pub fn new(data: Data, base: u64, out_base: u64, pred: ScanPredicate) -> Self {
        Self { data, base, out_base, pred, i: 0, matches: 0, configured: false, q: OpQueue::new() }
    }
}

impl Kernel for SimdScanKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if !self.configured {
            self.configured = true;
            return Some(MicroOp::ConfigStream {
                buf: 0,
                base: self.base,
                len: self.data.len() as u64 * TUPLE_BYTES as u64,
            });
        }
        if self.q.is_empty() {
            if self.i >= self.data.len() {
                return None;
            }
            let group = (self.data.len() - self.i).min(8);
            let addr = self.base + (self.i as u64) * TUPLE_BYTES as u64;
            {
                // Pop in 64 B pieces: finer grain keeps the in-order core fed
                // even when the buffer holds less than a full SIMD group.
                let mut off = 0u32;
                while off < group as u32 * TUPLE_BYTES {
                    let piece = (group as u32 * TUPLE_BYTES - off).min(64);
                    self.q.push(MicroOp::stream_load(0, addr + off as u64, piece));
                    off += piece;
                }
            }
            self.q.push(MicroOp::Simd { dep: Dep::OnPrevLoad });
            let hits =
                self.data[self.i..self.i + group].iter().filter(|t| self.pred.matches(t)).count();
            if hits > 0 {
                let out = self.out_base + self.matches * TUPLE_BYTES as u64;
                self.q.push(MicroOp::Store {
                    addr: out,
                    bytes: hits as u32 * TUPLE_BYTES,
                    kind: StoreKind::Streaming,
                });
                self.matches += hits as u64;
            }
            self.i += group;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "scan.simd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_ops(k: &mut dyn Kernel) -> Vec<MicroOp> {
        std::iter::from_fn(|| k.next_op()).collect()
    }

    #[test]
    fn functional_scan_matches_reference() {
        let data: Vec<Tuple> = (0..100).map(|i| Tuple::new(i % 10, i)).collect();
        let hits = scan_matches(&data, 3);
        assert_eq!(hits, crate::reference::scanned(&data, 3));
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn predicates_partition_the_relation() {
        let data: Vec<Tuple> = (0..100).map(|i| Tuple::new(i, i * 3)).collect();
        assert_eq!(scan_filter(&data, ScanPredicate::All).len(), 100);
        assert_eq!(scan_filter(&data, ScanPredicate::KeyBelow(10)).len(), 10);
        let kept = scan_filter(&data, ScanPredicate::PayloadModNot { modulus: 3, remainder: 0 });
        assert!(kept.is_empty(), "all payloads are multiples of 3");
        let dropped_none =
            scan_filter(&data, ScanPredicate::PayloadModNot { modulus: 3, remainder: 1 });
        assert_eq!(dropped_none.len(), 100);
        // Congruence mod 0 is equality: drops exactly the one payload == 6.
        let mod_zero =
            scan_filter(&data, ScanPredicate::PayloadModNot { modulus: 0, remainder: 6 });
        assert_eq!(mod_zero.len(), 99);
        assert!(mod_zero.iter().all(|t| t.payload != 6));
        // Order is preserved.
        let below = scan_filter(&data, ScanPredicate::KeyBelow(50));
        assert!(below.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn scalar_kernel_emits_one_load_per_tuple() {
        let data: crate::Data = (0..32).map(|i| Tuple::new(i, i)).collect();
        let mut k = ScalarScanKernel::new(
            data.clone(),
            0,
            1 << 20,
            ScanPredicate::KeyEquals(5),
            StoreKind::Cached,
        );
        let ops = collect_ops(&mut k);
        let loads = ops.iter().filter(|o| matches!(o, MicroOp::Load { .. })).count();
        let stores = ops.iter().filter(|o| matches!(o, MicroOp::Store { .. })).count();
        assert_eq!(loads, 32);
        assert_eq!(stores, 1, "exactly one key matches");
        // Loads walk the array sequentially.
        let addrs: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                MicroOp::Load { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert!(addrs.windows(2).all(|w| w[1] == w[0] + 16));
    }

    #[test]
    fn simd_kernel_uses_one_op_per_8_tuples() {
        let data: crate::Data = (0..64).map(|i| Tuple::new(i, i)).collect();
        let mut k = SimdScanKernel::new(data.clone(), 4096, 1 << 20, ScanPredicate::KeyEquals(3));
        let ops = collect_ops(&mut k);
        let simds = ops.iter().filter(|o| matches!(o, MicroOp::Simd { .. })).count();
        assert_eq!(simds, 8, "64 tuples / 8 lanes");
        assert!(matches!(ops[0], MicroOp::ConfigStream { buf: 0, base: 4096, len: 1024 }));
    }

    #[test]
    fn simd_kernel_handles_ragged_tail() {
        let data: crate::Data = (0..13).map(|i| Tuple::new(i, i)).collect();
        let mut k = SimdScanKernel::new(data, 0, 1 << 20, ScanPredicate::KeyEquals(99));
        let ops = collect_ops(&mut k);
        let pops: Vec<u32> = ops
            .iter()
            .filter_map(|o| match o {
                MicroOp::Load { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(
            pops,
            vec![64, 64, 64, 16],
            "8 tuples (two 64 B pops) then the 5-tuple tail (64 + 16)"
        );
    }
}
