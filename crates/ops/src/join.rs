//! The Join operator's probe phase (R ⋈ S on a foreign key).
//!
//! Two algorithm families (§4.1.1, §6):
//!
//! * **Hash join** (CPU, NMP-rand): the probe phase "starts with building a
//!   hash table and computing a prefix sum ... to group together keys of
//!   the R relation that map to the same hash index, and store them in a
//!   contiguous address range (an *index range*). Finally, for each tuple
//!   in S, the index range of R that corresponds to the S tuple's key hash
//!   is probed". O(n), but every probe is a dependent random access.
//! * **Sort-merge join** (Mondrian, NMP-seq): both relations are sorted,
//!   then joined in one final sequential pass. O(n log n), but purely
//!   sequential.

use std::sync::Arc;

use mondrian_cores::{Dep, Kernel, MicroOp, StoreKind};
use mondrian_workloads::{Tuple, TUPLE_BYTES};

use crate::hash::{mix64, PartitionScheme};
use crate::opqueue::OpQueue;
use crate::reference::JoinRow;
use crate::Data;

/// R reordered into contiguous per-hash-bucket *index ranges* — the result
/// of Table 2's "Hash keys & reorder" step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinIndex {
    /// Hash bits (2^bits buckets).
    pub bits: u32,
    /// `offsets[b]..offsets[b+1]` is bucket `b`'s range in `reordered`.
    pub offsets: Vec<usize>,
    /// R tuples grouped by hash bucket.
    pub reordered: Vec<Tuple>,
}

impl JoinIndex {
    /// The bucket of `key`.
    pub fn bucket(&self, key: u64) -> usize {
        (mix64(key) & ((1u64 << self.bits) - 1)) as usize
    }

    /// The index range of `key`'s bucket.
    pub fn range(&self, key: u64) -> std::ops::Range<usize> {
        let b = self.bucket(key);
        self.offsets[b]..self.offsets[b + 1]
    }
}

/// Builds the index ranges for `r` with `2^bits` buckets (counting sort on
/// the key hash).
pub fn build_index(r: &[Tuple], bits: u32) -> JoinIndex {
    let scheme = PartitionScheme::HashBits { bits };
    let parts = scheme.parts() as usize;
    let mut counts = vec![0usize; parts];
    for t in r {
        counts[scheme.bucket(t.key) as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(parts + 1);
    let mut acc = 0;
    for &c in &counts {
        offsets.push(acc);
        acc += c;
    }
    offsets.push(acc);
    let mut cursors = offsets[..parts].to_vec();
    let mut reordered = vec![Tuple::default(); r.len()];
    for t in r {
        let b = scheme.bucket(t.key) as usize;
        reordered[cursors[b]] = *t;
        cursors[b] += 1;
    }
    JoinIndex { bits, offsets, reordered }
}

/// Probes `s` against the index, producing `(key, r_payload, s_payload)`
/// rows in S order.
pub fn probe_index(index: &JoinIndex, s: &[Tuple]) -> Vec<JoinRow> {
    let mut out = Vec::new();
    for st in s {
        for rt in &index.reordered[index.range(st.key)] {
            if rt.key == st.key {
                out.push((st.key, rt.payload, st.payload));
            }
        }
    }
    out
}

/// Sort-merge join of two sorted relations (general: handles duplicate keys
/// on both sides with a block-nested step per key run).
pub fn merge_join(r: &[Tuple], s: &[Tuple]) -> Vec<JoinRow> {
    debug_assert!(r.windows(2).all(|w| w[0] <= w[1]), "R must be sorted");
    debug_assert!(s.windows(2).all(|w| w[0] <= w[1]), "S must be sorted");
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < r.len() && j < s.len() {
        let (rk, sk) = (r[i].key, s[j].key);
        if rk < sk {
            i += 1;
        } else if rk > sk {
            j += 1;
        } else {
            let i_end = i + r[i..].iter().take_while(|t| t.key == rk).count();
            let j_end = j + s[j..].iter().take_while(|t| t.key == sk).count();
            for st in &s[j..j_end] {
                for rt in &r[i..i_end] {
                    out.push((rk, rt.payload, st.payload));
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

/// Hash-probe kernel (CPU, NMP-rand): per S tuple, a sequential load, the
/// key hash, then a *dependent* random load into R's index range — the
/// access pattern that caps NMP-rand at IPC 0.24 (§7.1).
pub struct HashProbeKernel {
    s: Data,
    index: Arc<JoinIndex>,
    s_base: u64,
    r_base: u64,
    out_base: u64,
    store_kind: StoreKind,
    i: usize,
    out_count: u64,
    q: OpQueue,
}

impl HashProbeKernel {
    /// Probes `s` (at `s_base`) against `index` (reordered R at `r_base`),
    /// writing matches to `out_base`.
    pub fn new(
        s: Data,
        index: Arc<JoinIndex>,
        s_base: u64,
        r_base: u64,
        out_base: u64,
        store_kind: StoreKind,
    ) -> Self {
        Self {
            s,
            index,
            s_base,
            r_base,
            out_base,
            store_kind,
            i: 0,
            out_count: 0,
            q: OpQueue::new(),
        }
    }
}

impl Kernel for HashProbeKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            if self.i >= self.s.len() {
                return None;
            }
            let st = self.s[self.i];
            let addr = self.s_base + (self.i as u64) * TUPLE_BYTES as u64;
            // The next iteration's load is gated by the previous walk's
            // exit branch (loop-carried dependence): mispredicted walk
            // exits squash run-ahead, which is what pins the paper's
            // NMP-rand at IPC 0.24 (§7.1).
            self.q.push(MicroOp::load_dep(addr, TUPLE_BYTES));
            self.q.push(MicroOp::compute_dep(6));
            let range = self.index.range(st.key);
            for idx in range.clone() {
                let r_addr = self.r_base + idx as u64 * TUPLE_BYTES as u64;
                // The first access depends on the hash of the S key; each
                // further step of the walk is gated by the previous
                // compare-and-continue, so the whole range walk is a
                // dependence chain (§3.2's fine-grained random accesses).
                self.q.push(MicroOp::load_dep(r_addr, TUPLE_BYTES));
                self.q.push(MicroOp::compute_dep(2));
                if self.index.reordered[idx].key == st.key {
                    let out = self.out_base + self.out_count * TUPLE_BYTES as u64;
                    self.q.push(MicroOp::Store {
                        addr: out,
                        bytes: TUPLE_BYTES,
                        kind: self.store_kind,
                    });
                    self.out_count += 1;
                }
            }
            self.i += 1;
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "join.hash_probe"
    }
}

/// Scalar merge-join kernel (NMP-seq): both sorted relations stream past a
/// dependent compare per step.
pub struct MergeJoinKernel {
    r: Data,
    s: Data,
    r_base: u64,
    s_base: u64,
    out_base: u64,
    store_kind: StoreKind,
    i: usize,
    j: usize,
    out_count: u64,
    q: OpQueue,
}

impl MergeJoinKernel {
    /// Merge-joins sorted `r` (at `r_base`) with sorted `s` (at `s_base`).
    pub fn new(
        r: Data,
        s: Data,
        r_base: u64,
        s_base: u64,
        out_base: u64,
        store_kind: StoreKind,
    ) -> Self {
        Self {
            r,
            s,
            r_base,
            s_base,
            out_base,
            store_kind,
            i: 0,
            j: 0,
            out_count: 0,
            q: OpQueue::new(),
        }
    }
}

impl Kernel for MergeJoinKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.q.is_empty() {
            if self.i >= self.r.len() || self.j >= self.s.len() {
                return None;
            }
            let (rk, sk) = (self.r[self.i].key, self.s[self.j].key);
            let t = TUPLE_BYTES;
            if rk < sk {
                self.q.push(MicroOp::load(self.r_base + self.i as u64 * t as u64, t));
                self.q.push(MicroOp::compute_dep(4));
                self.i += 1;
            } else if rk > sk {
                self.q.push(MicroOp::load(self.s_base + self.j as u64 * t as u64, t));
                self.q.push(MicroOp::compute_dep(4));
                self.j += 1;
            } else {
                // FK match: emit the joined row; advance S (R may match more
                // S tuples).
                self.q.push(MicroOp::load(self.s_base + self.j as u64 * t as u64, t));
                self.q.push(MicroOp::compute_dep(4));
                self.q.push(MicroOp::Store {
                    addr: self.out_base + self.out_count * t as u64,
                    bytes: t,
                    kind: self.store_kind,
                });
                self.out_count += 1;
                self.j += 1;
            }
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "join.merge.scalar"
    }
}

/// SIMD merge-join kernel (Mondrian): R streams through buffer 0, S through
/// buffer 1; eight comparisons per SIMD round, matched rows stream out.
pub struct SimdMergeJoinKernel {
    r: Data,
    s: Data,
    r_base: u64,
    s_base: u64,
    out_base: u64,
    i: usize,
    j: usize,
    out_count: u64,
    configured: bool,
    q: OpQueue,
}

impl SimdMergeJoinKernel {
    /// See [`MergeJoinKernel::new`].
    pub fn new(r: Data, s: Data, r_base: u64, s_base: u64, out_base: u64) -> Self {
        Self {
            r,
            s,
            r_base,
            s_base,
            out_base,
            i: 0,
            j: 0,
            out_count: 0,
            configured: false,
            q: OpQueue::new(),
        }
    }
}

impl Kernel for SimdMergeJoinKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        if !self.configured {
            self.configured = true;
            let t = TUPLE_BYTES as u64;
            self.q.push(MicroOp::ConfigStream {
                buf: 0,
                base: self.r_base,
                len: self.r.len() as u64 * t,
            });
            self.q.push(MicroOp::ConfigStream {
                buf: 1,
                base: self.s_base,
                len: self.s.len() as u64 * t,
            });
        }
        if self.q.is_empty() {
            if self.i >= self.r.len() || self.j >= self.s.len() {
                return None;
            }
            // Replay up to 8 merge steps.
            let (i0, j0) = (self.i, self.j);
            let mut matches = 0u32;
            while self.i - i0 + (self.j - j0) < 8 && self.i < self.r.len() && self.j < self.s.len()
            {
                let (rk, sk) = (self.r[self.i].key, self.s[self.j].key);
                if rk < sk {
                    self.i += 1;
                } else {
                    if rk == sk {
                        matches += 1;
                    }
                    self.j += 1;
                }
            }
            let (ra, sa) = ((self.i - i0) as u32, (self.j - j0) as u32);
            let t = TUPLE_BYTES;
            if ra > 0 {
                self.q.push(MicroOp::stream_load(0, self.r_base + i0 as u64 * t as u64, ra * t));
            }
            if sa > 0 {
                self.q.push(MicroOp::stream_load(1, self.s_base + j0 as u64 * t as u64, sa * t));
            }
            for _ in 0..4 {
                self.q.push(MicroOp::Simd { dep: Dep::OnPrevLoad });
            }
            if matches > 0 {
                self.q.push(MicroOp::Store {
                    addr: self.out_base + self.out_count * t as u64,
                    bytes: matches * t,
                    kind: StoreKind::Streaming,
                });
                self.out_count += matches as u64;
            }
        }
        self.q.pop()
    }

    fn name(&self) -> &'static str {
        "join.merge.simd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{canonical, nested_loop_join};
    use mondrian_workloads::foreign_key_pair;

    #[test]
    fn index_ranges_partition_r() {
        let (r, _) = foreign_key_pair(256, 1, 1);
        let idx = build_index(&r, 5);
        assert_eq!(idx.offsets.len(), 33);
        assert_eq!(*idx.offsets.last().unwrap(), 256);
        // Every tuple sits in its own bucket's range.
        for b in 0..32usize {
            for t in &idx.reordered[idx.offsets[b]..idx.offsets[b + 1]] {
                assert_eq!(idx.bucket(t.key), b);
            }
        }
    }

    #[test]
    fn hash_probe_matches_nested_loop() {
        let (r, s) = foreign_key_pair(64, 256, 2);
        let idx = build_index(&r, 4);
        assert_eq!(canonical(probe_index(&idx, &s)), nested_loop_join(&r, &s));
        // FK: every S tuple matched exactly once.
        assert_eq!(probe_index(&idx, &s).len(), 256);
    }

    #[test]
    fn merge_join_matches_nested_loop() {
        let (r, s) = foreign_key_pair(64, 256, 3);
        let rs = crate::reference::sorted(&r);
        let ss = crate::reference::sorted(&s);
        assert_eq!(canonical(merge_join(&rs, &ss)), nested_loop_join(&r, &s));
    }

    #[test]
    fn merge_join_handles_duplicates_on_both_sides() {
        let r = vec![Tuple::new(1, 10), Tuple::new(1, 11), Tuple::new(2, 20)];
        let s = vec![Tuple::new(1, 100), Tuple::new(1, 101), Tuple::new(3, 300)];
        let out = canonical(merge_join(&r, &s));
        assert_eq!(out, nested_loop_join(&r, &s));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn probe_kernel_emits_dependent_first_probe() {
        let (r, s) = foreign_key_pair(32, 64, 4);
        let idx = Arc::new(build_index(&r, 4));
        let mut k = HashProbeKernel::new(
            Arc::from(s.as_slice()),
            idx,
            0,
            1 << 20,
            1 << 21,
            StoreKind::Cached,
        );
        let ops: Vec<MicroOp> = std::iter::from_fn(|| k.next_op()).collect();
        let dep_probes =
            ops.iter().filter(|o| matches!(o, MicroOp::Load { dep: Dep::OnPrevLoad, .. })).count();
        assert!(dep_probes >= 64, "every probe step is a dependent access");
        let stores = ops.iter().filter(|o| matches!(o, MicroOp::Store { .. })).count();
        assert_eq!(stores, 64, "FK join outputs one row per S tuple");
    }

    #[test]
    fn simd_merge_join_consumes_both_relations() {
        let (r, s) = foreign_key_pair(64, 128, 5);
        let rs: Data = crate::reference::sorted(&r).into();
        let ss: Data = crate::reference::sorted(&s).into();
        let mut k = SimdMergeJoinKernel::new(rs, ss, 0, 1 << 20, 1 << 21);
        let ops: Vec<MicroOp> = std::iter::from_fn(|| k.next_op()).collect();
        let stored: u64 = ops
            .iter()
            .filter_map(|o| match o {
                MicroOp::Store { bytes, .. } => Some(*bytes as u64 / 16),
                _ => None,
            })
            .sum();
        // All S tuples match, though the kernel may stop once one input
        // side exhausts (trailing non-matching R tuples are irrelevant).
        assert!(stored >= 120, "almost all 128 matches stored, got {stored}");
    }

    #[test]
    fn scalar_merge_join_advances_both_cursors() {
        let (r, s) = foreign_key_pair(32, 64, 6);
        let rs: Data = crate::reference::sorted(&r).into();
        let ss: Data = crate::reference::sorted(&s).into();
        let mut k = MergeJoinKernel::new(rs, ss, 0, 1 << 20, 1 << 21, StoreKind::Streaming);
        let ops: Vec<MicroOp> = std::iter::from_fn(|| k.next_op()).collect();
        let stores = ops.iter().filter(|o| matches!(o, MicroOp::Store { .. })).count();
        assert_eq!(stores, 64);
    }
}
