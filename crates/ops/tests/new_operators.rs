//! Property tests for the opened operator IR: the functional executors of
//! `union`, `cogroup` and `flat_map` must match their naive reference
//! executors byte for byte across key distributions (uniform and Zipfian
//! at several skews), relation sizes and seeds — and the registry's
//! execute/reference pairing must hold for every operator.

use proptest::prelude::*;

use mondrian_ops::operator::{operator, OpInvocation, OpOutput, OpSpec};
use mondrian_ops::reference;
use mondrian_ops::scan::ScanPredicate;
use mondrian_ops::OperatorKind;
use mondrian_workloads::{uniform_relation, zipfian_relation, Tuple};

/// A generated relation under one of the swept key distributions.
fn relation(n: usize, key_bound: u64, dist: u64, seed: u64) -> Vec<Tuple> {
    match dist % 4 {
        0 => uniform_relation(n, key_bound, seed),
        1 => zipfian_relation(n, key_bound, 0.5, seed),
        2 => zipfian_relation(n, key_bound, 0.9, seed),
        // Heavy skew: most tuples share very few keys.
        _ => zipfian_relation(n, key_bound, 1.2, seed),
    }
}

fn inv<'a>(inputs: &'a [&'a [Tuple]], seed: u64) -> OpInvocation<'a> {
    OpInvocation { inputs, build: None, seed }
}

proptest! {
    /// Union's functional executor equals its reference (plain
    /// concatenation in input order) for 2..5 inputs of any distribution.
    #[test]
    fn union_matches_reference(
        params in (2usize..5, 1usize..300, 1usize..300, 0u64..4, 0u64..1000)
    ) {
        let (k, na, nb, dist, seed) = params;
        let rels: Vec<Vec<Tuple>> = (0..k)
            .map(|i| relation(if i % 2 == 0 { na } else { nb }, 64, dist, seed + i as u64))
            .collect();
        let inputs: Vec<&[Tuple]> = rels.iter().map(|r| &r[..]).collect();
        let op = operator(OperatorKind::Union);
        let spec = OpSpec::new(OperatorKind::Union);
        let got = op.execute(&spec, &inv(&inputs, seed));
        prop_assert_eq!(&got, &op.reference(&spec, &inv(&inputs, seed)));
        prop_assert_eq!(got.rows(), rels.iter().map(Vec::len).sum::<usize>());
        // Concatenation preserves each input's tuples in order.
        if let OpOutput::Tuples(out) = &got {
            prop_assert_eq!(&out[..rels[0].len()], &rels[0][..]);
        }
    }

    /// Cogroup's functional executor (hash grouping of both sides) equals
    /// the per-tuple reference, and every key of either side appears.
    #[test]
    fn cogroup_matches_reference(
        params in (1usize..400, 1usize..400, 0u64..4, 0u64..4, 0u64..1000)
    ) {
        let (na, nb, dist_a, dist_b, seed) = params;
        let a = relation(na, 32, dist_a, seed);
        let b = relation(nb, 32, dist_b, seed ^ 0xb);
        let inputs: [&[Tuple]; 2] = [&a, &b];
        let op = operator(OperatorKind::Cogroup);
        let spec = OpSpec::new(OperatorKind::Cogroup);
        let got = op.execute(&spec, &inv(&inputs, seed));
        prop_assert_eq!(&got, &op.reference(&spec, &inv(&inputs, seed)));
        if let OpOutput::CoGroups(groups) = &got {
            let keys: std::collections::BTreeSet<u64> =
                a.iter().chain(&b).map(|t| t.key).collect();
            prop_assert_eq!(groups.len(), keys.len(), "every key of either side appears");
            // Group counts add up to the input sizes.
            let count_a: u64 = groups.values().map(|(ga, _)| ga.count).sum();
            let count_b: u64 = groups.values().map(|(_, gb)| gb.count).sum();
            prop_assert_eq!((count_a, count_b), (na as u64, nb as u64));
        }
    }

    /// FlatMap's functional executor equals its reference for every
    /// fanout and predicate, rows amplify exactly by fanout, and the
    /// output carries the amplification factor.
    #[test]
    fn flat_map_matches_reference(
        params in (1usize..500, 1u64..9, 0u64..4, 0u64..1000, 0u64..3)
    ) {
        let (n, fanout, dist, seed, pred_sel) = params;
        let rel = relation(n, 64, dist, seed);
        let pred = match pred_sel {
            0 => ScanPredicate::All,
            1 => ScanPredicate::KeyBelow(32),
            _ => ScanPredicate::PayloadModNot { modulus: 3, remainder: 0 },
        };
        let op = operator(OperatorKind::FlatMap);
        let spec = OpSpec { kind: OperatorKind::FlatMap, pred: Some(pred), fanout };
        let inputs: [&[Tuple]; 1] = [&rel];
        let got = op.execute(&spec, &inv(&inputs, seed));
        prop_assert_eq!(&got, &op.reference(&spec, &inv(&inputs, seed)));
        let matches = reference::filtered(&rel, pred).len();
        prop_assert_eq!(got.rows(), matches * fanout as usize);
        prop_assert_eq!(got.amplification(), fanout);
        // Keys survive expansion: the key multiset amplifies uniformly.
        if let OpOutput::Expanded { tuples, .. } = &got {
            let mut per_key: std::collections::BTreeMap<u64, usize> = Default::default();
            for t in tuples {
                *per_key.entry(t.key).or_default() += 1;
            }
            for (key, count) in per_key {
                let input_count =
                    reference::filtered(&rel, pred).iter().filter(|t| t.key == key).count();
                prop_assert_eq!(count, input_count * fanout as usize);
            }
        }
    }

    /// The registry invariant, swept: every operator's functional
    /// executor agrees with its reference on generated data.
    #[test]
    fn every_registered_operator_agrees_with_its_reference(
        params in (0usize..7, 1usize..300, 0u64..4, 0u64..1000, 1u64..5)
    ) {
        let (which, n, dist, seed, fanout) = params;
        let kind = OperatorKind::ALL[which];
        let op = operator(kind);
        let a = relation(n, 32, dist, seed);
        let b = relation(n / 2 + 1, 32, dist, seed ^ 1);
        let inputs: Vec<&[Tuple]> =
            (0..op.profile().min_inputs.max(1)).map(|i| if i == 0 { &a[..] } else { &b[..] }).collect();
        let spec = OpSpec { fanout, ..OpSpec::new(kind) };
        let invocation = inv(&inputs, seed);
        prop_assert_eq!(
            op.execute(&spec, &invocation),
            op.reference(&spec, &invocation),
            "{:?} diverged", kind
        );
    }
}

/// The union reference concatenates in input order — pinned explicitly
/// against a hand-built expectation (not just executor-vs-executor).
#[test]
fn union_is_ordered_concatenation() {
    let a = vec![Tuple::new(3, 1), Tuple::new(1, 2)];
    let b = vec![Tuple::new(9, 9)];
    let c = vec![Tuple::new(0, 0), Tuple::new(3, 5)];
    let out = reference::unioned(&[&a, &b, &c]);
    let expect: Vec<Tuple> = a.iter().chain(&b).chain(&c).copied().collect();
    assert_eq!(out, expect);
}

/// Cogroup against an empty side degenerates to a one-sided group-by.
#[test]
fn cogroup_with_empty_side_is_group_by() {
    let a = uniform_relation(200, 16, 7);
    let empty: Vec<Tuple> = Vec::new();
    let cg = reference::cogrouped(&a, &empty);
    let grouped = reference::grouped(&a);
    assert_eq!(cg.len(), grouped.len());
    for (k, (ga, gb)) in &cg {
        assert_eq!(ga, &grouped[k]);
        assert_eq!(gb.count, 0);
    }
}
